"""The shared per-link spec and its per-substrate compiler.

:class:`LinkSpec` is the substrate-neutral description of one link:
physical parameters (capacity, buffer, propagation) plus at most one
differentiation mechanism from the shared vocabulary of
:mod:`repro.fluid.params` (:class:`PolicerSpec`, :class:`ShaperSpec`,
:class:`AqmSpec`, :class:`WeightedShaperSpec` — all expressed as
fractions of capacity and seconds, so they compile to any substrate).

This module is the *single* validation point for link configuration:
:func:`normalize_specs` accepts shared or fluid-native specs, checks
them once, and the compilers (:func:`to_fluid`, :func:`to_packet`)
translate into engine-native units. All errors are
:class:`~repro.exceptions.ConfigurationError` (a
:class:`~repro.exceptions.ReproError`), so callers catch one base
class regardless of substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.fluid.params import (
    AqmSpec,
    FluidLinkSpec,
    PolicerSpec,
    ShaperSpec,
    WeightedShaperSpec,
    mbps_to_pps,
    validate_single_mechanism,
)
from repro.emulator.specs import PacketLinkSpec

#: Default one-way propagation per link for the packet substrate.
#: Deliberately small: path RTTs are owned by the workload
#: (``PathWorkload.rtt_seconds``), which the packet engine honours by
#: stretching the ACK return path; link delay only has to keep the
#: forward direction causally ordered.
DEFAULT_DELAY_SECONDS = 0.002


@dataclass(frozen=True)
class LinkSpec:
    """Substrate-neutral physical + policy description of one link.

    Attributes:
        capacity_mbps: Link capacity.
        buffer_seconds: Droptail queue depth in seconds at capacity
            (the paper's RTT-sized buffers).
        delay_seconds: One-way propagation (packet substrate).
        policer: Optional token-bucket differentiation.
        shaper: Optional dual-shaper differentiation.
        aqm: Optional class-targeted early drop.
        weighted: Optional work-conserving weighted service.
    """

    capacity_mbps: float = 100.0
    buffer_seconds: float = 0.2
    delay_seconds: float = DEFAULT_DELAY_SECONDS
    policer: Optional[PolicerSpec] = None
    shaper: Optional[ShaperSpec] = None
    aqm: Optional[AqmSpec] = None
    weighted: Optional[WeightedShaperSpec] = None

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.buffer_seconds <= 0:
            raise ConfigurationError("buffer depth must be positive")
        if self.delay_seconds < 0:
            raise ConfigurationError("delay must be nonnegative")
        validate_single_mechanism(self.mechanisms)

    @property
    def mechanisms(self) -> Tuple[object, ...]:
        return tuple(
            m
            for m in (self.policer, self.shaper, self.aqm, self.weighted)
            if m is not None
        )

    @property
    def is_differentiating(self) -> bool:
        return bool(self.mechanisms)

    @property
    def capacity_pps(self) -> float:
        return mbps_to_pps(self.capacity_mbps)


def from_fluid(
    spec: FluidLinkSpec,
    delay_seconds: float = DEFAULT_DELAY_SECONDS,
) -> LinkSpec:
    """Lift a fluid-native spec into the shared form."""
    return LinkSpec(
        capacity_mbps=spec.capacity_mbps,
        buffer_seconds=spec.buffer_rtt_seconds,
        delay_seconds=delay_seconds,
        policer=spec.policer,
        shaper=spec.shaper,
        aqm=spec.aqm,
        weighted=spec.weighted,
    )


def to_fluid(spec: LinkSpec) -> FluidLinkSpec:
    """Compile a shared spec for the fluid engine."""
    return FluidLinkSpec(
        capacity_mbps=spec.capacity_mbps,
        buffer_rtt_seconds=spec.buffer_seconds,
        policer=spec.policer,
        shaper=spec.shaper,
        aqm=spec.aqm,
        weighted=spec.weighted,
    )


def to_packet(spec: LinkSpec) -> PacketLinkSpec:
    """Compile a shared spec for the packet engine.

    Rates become packets/second, the buffer becomes a packet count,
    and the fraction-based policer becomes a packet-rate token
    bucket; the other mechanisms pass through (the packet engine
    consumes the shared fraction-based vocabulary directly).
    """
    rate_pps = spec.capacity_pps
    policer_rate = None
    policer_bucket = 8.0
    policed_class = None
    if spec.policer is not None:
        policer_rate = spec.policer.rate_fraction * rate_pps
        policer_bucket = max(1.0, spec.policer.burst_seconds * policer_rate)
        policed_class = spec.policer.target_class
    return PacketLinkSpec(
        rate_pps=rate_pps,
        delay_seconds=spec.delay_seconds,
        queue_packets=max(1, int(round(spec.buffer_seconds * rate_pps))),
        policer_rate_pps=policer_rate,
        policer_bucket=policer_bucket,
        policed_class=policed_class,
        shaper=spec.shaper,
        aqm=spec.aqm,
        weighted=spec.weighted,
    )


def normalize_specs(
    link_specs: Mapping[str, Union[LinkSpec, FluidLinkSpec]],
) -> Dict[str, LinkSpec]:
    """Normalize a possibly mixed spec mapping to the shared form.

    Accepts shared :class:`LinkSpec` and fluid-native
    :class:`FluidLinkSpec` values (existing topology builders emit
    the latter); anything else is a configuration error. Dataclass
    construction re-runs the unified validation on every entry.
    """
    out: Dict[str, LinkSpec] = {}
    for lid, spec in link_specs.items():
        if isinstance(spec, LinkSpec):
            out[lid] = spec
        elif isinstance(spec, FluidLinkSpec):
            out[lid] = from_fluid(spec)
        else:
            raise ConfigurationError(
                f"link {lid!r}: unsupported spec type "
                f"{type(spec).__name__}"
            )
    return out
