"""Zero-dependency tracing, metrics, and run manifests.

Opt-in observability for the whole reproduction: hierarchical spans
(:mod:`repro.telemetry.trace`), typed counters/gauges/histograms with
Prometheus/JSON export (:mod:`repro.telemetry.metrics`), and
:class:`RunManifest` provenance records (:mod:`repro.telemetry.manifest`).

Disabled by default.  Enable with ``REPRO_TELEMETRY=1`` (in-memory
spans), ``REPRO_TELEMETRY=<dir>`` (JSONL export to ``<dir>/trace.jsonl``
plus ``metrics.json`` from CLI runs), or programmatically via
:func:`configure`.  Hot paths check :func:`enabled` once per session —
the disabled path is a module-level no-op and is pinned bit-identical
by the golden/hypothesis suites (see DESIGN.md S23).
"""

from repro.telemetry.manifest import RunManifest, write_manifest
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NOOP_INSTRUMENT,
    Registry,
    get_registry,
    load_metrics,
    reset_registry,
)
from repro.telemetry.trace import (
    ENV_VAR,
    METRICS_FILENAME,
    NOOP_SPAN,
    Span,
    SpanContext,
    TRACE_FILENAME,
    Tracer,
    activate,
    configure,
    configure_from_env,
    current_context,
    enabled,
    export_dir,
    get_tracer,
    load_trace,
    span,
    trace_path,
)

__all__ = [
    "ENV_VAR",
    "METRICS_FILENAME",
    "TRACE_FILENAME",
    "NOOP_INSTRUMENT",
    "NOOP_SPAN",
    "Counter",
    "CountingRNG",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Registry",
    "RunManifest",
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "configure",
    "configure_from_env",
    "count_rng",
    "current_context",
    "enabled",
    "export_dir",
    "get_registry",
    "get_tracer",
    "load_metrics",
    "load_trace",
    "reset_registry",
    "span",
    "trace_path",
    "write_manifest",
]


class CountingRNG:
    """Forwarding proxy that counts method calls on a numpy Generator.

    Every attribute access forwards to the wrapped generator, so the
    underlying bit stream is untouched — draws made through the proxy
    are bit-identical to draws made directly.  Only *method calls* are
    counted (one per call, regardless of the size drawn), which is what
    the engines need to spot workload-mix changes.
    """

    __slots__ = ("_rng", "_counter")

    def __init__(self, rng, counter) -> None:
        self._rng = rng
        self._counter = counter

    def __getattr__(self, name):
        attr = getattr(self._rng, name)
        if not callable(attr):
            return attr
        counter = self._counter

        def _counted(*args, **kwargs):
            counter.inc()
            return attr(*args, **kwargs)

        return _counted


def count_rng(rng, counter):
    """Wrap ``rng`` in a :class:`CountingRNG` when telemetry is enabled."""
    if not enabled():
        return rng
    return CountingRNG(rng, counter)


def snapshot_kernel_counts(registry=None):
    """Mirror ``fluid.kernels`` dispatch counts into a registry.

    The kernels module keeps its counts in a plain dict (nanosecond
    increments on a microsecond path); this folds the current totals
    into ``repro_kernel_calls_total{kernel,backend}`` counters.  The
    source is monotonic, so snapshot assignment is safe.
    """
    from repro.fluid import kernels  # lazy: avoid an import cycle

    reg = registry if registry is not None else get_registry()
    for (name, backend), count in sorted(
            kernels.kernel_call_counts().items()):
        instrument = reg.counter(
            "repro_kernel_calls_total",
            "fused step-kernel dispatches by kernel and backend",
            kernel=name, backend=backend,
        )
        if isinstance(instrument, Counter):
            instrument.value = float(count)
    return reg


def snapshot_parallel_stats(registry=None):
    """Mirror :mod:`repro.parallel` transport totals into a registry.

    The shared-memory layer keeps its counters in a plain dataclass
    (one lock-guarded increment per export/pickle, nothing per
    element); this folds the current totals into
    ``repro_parallel_*_total`` counters. All sources are monotonic,
    so snapshot assignment is safe.
    """
    from repro import parallel  # lazy: avoid an import cycle

    reg = registry if registry is not None else get_registry()
    stats = parallel.transport_stats()
    for name, help_text, value in (
        (
            "repro_parallel_shm_bytes_exported_total",
            "bytes copied into shared-memory segments",
            stats.shm_bytes_exported,
        ),
        (
            "repro_parallel_handle_pickles_total",
            "shared-array handles pickled into worker task payloads",
            stats.handle_pickles,
        ),
        (
            "repro_parallel_task_array_bytes_total",
            "raw ndarray bytes pickled in task payloads (0 = zero-copy)",
            stats.task_array_bytes,
        ),
        (
            "repro_parallel_tasks_counted_total",
            "worker task payloads audited by the transport counter",
            stats.tasks,
        ),
    ):
        instrument = reg.counter(name, help_text)
        if isinstance(instrument, Counter):
            instrument.value = float(value)
    return reg
