"""Run manifests: provenance attached to sweep/bench/monitor artifacts.

A :class:`RunManifest` pins down *what produced an artifact*: the kernel
backend (the same internals ``repro info`` reports), substrate
``name:version`` tags, numpy/numba/python versions, seed, spec digests,
best-effort ``git describe``, and host.  Benches embed it in
``BENCH_*.json`` (via ``benchmarks/_emit.py``), CLI runs prepend it to
``trace.jsonl``, and ``repro trace`` prints it above the span tree.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple


def _git_describe() -> Optional[str]:
    """Best-effort ``git describe`` for the repo holding this source."""
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    out = proc.stdout.strip()
    return out if proc.returncode == 0 and out else None


def _numba_version() -> Optional[str]:
    try:
        import numba  # noqa: F401 (optional dependency)
    except ImportError:
        return None
    return getattr(numba, "__version__", "unknown")


@dataclass(frozen=True)
class RunManifest:
    """Provenance for one run; build with :meth:`collect`."""

    kind: str
    created: float
    run_id: Optional[str]
    host: str
    platform: str
    python: str
    numpy: str
    numba: Optional[str]
    kernel_backend: str
    kernel_compiled: bool
    substrates: Tuple[Tuple[str, str], ...]
    seed: Optional[int]
    spec_digests: Tuple[str, ...]
    git: Optional[str]
    extra: Tuple[Tuple[str, Any], ...] = field(default=())

    @classmethod
    def collect(cls, kind: str, *, seed: Optional[int] = None,
                spec_digests: Sequence[str] = (),
                substrates: Optional[Sequence[str]] = None,
                run_id: Optional[str] = None,
                extra: Optional[Dict[str, Any]] = None) -> "RunManifest":
        # Lazy imports: the manifest reaches into the engine/substrate
        # layers, which must stay importable without telemetry.
        import numpy as np

        from repro.fluid import kernels
        from repro.substrate.registry import (available_substrates,
                                              substrate_cache_tag)

        info = kernels.kernel_info()
        names = (tuple(substrates) if substrates is not None
                 else tuple(available_substrates()))
        tags = []
        for name in names:
            try:
                tags.append((name, substrate_cache_tag(name)))
            except Exception:
                tags.append((name, f"{name}:unknown"))
        if run_id is None:
            from repro.telemetry import trace as _trace
            tracer = _trace.get_tracer()
            run_id = tracer.run_id if tracer.enabled else None
        return cls(
            kind=kind,
            created=time.time(),
            run_id=run_id,
            host=socket.gethostname(),
            platform=platform.platform(),
            python=sys.version.split()[0],
            numpy=np.__version__,
            numba=_numba_version(),
            kernel_backend=str(info.get("backend")),
            kernel_compiled=bool(info.get("compiled")),
            substrates=tuple(tags),
            seed=seed,
            spec_digests=tuple(spec_digests),
            git=_git_describe(),
            extra=tuple(sorted((extra or {}).items())),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "manifest": {
                "kind": self.kind,
                "created": self.created,
                "run_id": self.run_id,
                "host": self.host,
                "platform": self.platform,
                "python": self.python,
                "numpy": self.numpy,
                "numba": self.numba,
                "kernel_backend": self.kernel_backend,
                "kernel_compiled": self.kernel_compiled,
                "substrates": {name: tag for name, tag in self.substrates},
                "seed": self.seed,
                "spec_digests": list(self.spec_digests),
                "git": self.git,
                "extra": dict(self.extra),
            }
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


def write_manifest(manifest: RunManifest) -> None:
    """Append a manifest record to the active trace (if exporting)."""
    from repro.telemetry import trace as _trace

    _trace.get_tracer().write_record(manifest.as_dict())
