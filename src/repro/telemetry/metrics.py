"""Typed counters, gauges, and histograms with Prometheus/JSON export.

A :class:`Registry` hands out instruments on demand::

    reg = telemetry.get_registry()
    hits = reg.counter("repro_sweep_cache_hits_total",
                       help="sweep cache hits")
    hits.inc(3)

Instruments are keyed by ``(name, sorted labels)``; asking twice returns
the same instrument.  When the registry is disabled every accessor
returns a shared no-op instrument, but the supported pattern on hot
paths is the one used throughout the codebase: consult
``telemetry.enabled()`` once per session and skip instrument setup
entirely when it is false, so the disabled path costs nothing.

Instruments are plain-Python and rely on the GIL for atomicity; the
codebase parallelises with processes, not threads, and each process
owns its registry (sweep workers report timings back through the
existing result channel, which the parent folds into its histograms).

Export formats:

* :meth:`Registry.to_prometheus` — Prometheus text exposition
  (``# HELP`` / ``# TYPE`` + samples, histograms with cumulative
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series).
* :meth:`Registry.to_json` — stable JSON used by ``metrics.json``
  artifacts and ``repro metrics``.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(key: _LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative buckets on export)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +1 = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += value
        self.count += 1


class _NoopInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NOOP_INSTRUMENT = _NoopInstrument()


class _Family:
    __slots__ = ("kind", "help", "buckets", "instruments")

    def __init__(self, kind: str, help: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.instruments: Dict[_LabelKey, Any] = {}


class Registry:
    """Namespace of metric families, each a set of labelled instruments."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- instrument accessors ---------------------------------------------

    def _get(self, kind: str, name: str, help: str, labels: Dict[str, Any],
             buckets: Optional[Tuple[float, ...]] = None) -> Any:
        if not self.enabled:
            return NOOP_INSTRUMENT
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}")
            if help and not family.help:
                family.help = help
            instrument = family.instruments.get(key)
            if instrument is None:
                if kind == "counter":
                    instrument = Counter()
                elif kind == "gauge":
                    instrument = Gauge()
                else:
                    instrument = Histogram(family.buckets or DEFAULT_BUCKETS)
                family.instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Iterable[float]] = None,
                  **labels: Any) -> Histogram:
        bucket_tuple = tuple(buckets) if buckets is not None else None
        return self._get("histogram", name, help, labels, bucket_tuple)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # -- export -------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series: List[Dict[str, Any]] = []
            for key in sorted(family.instruments):
                instrument = family.instruments[key]
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["buckets"] = list(instrument.buckets)
                    entry["counts"] = list(instrument.counts)
                    entry["sum"] = instrument.total
                    entry["count"] = instrument.count
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            out[name] = {"kind": family.kind, "help": family.help,
                         "series": series}
        return out

    def to_prometheus(self) -> str:
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.instruments):
                instrument = family.instruments[key]
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(instrument.buckets,
                                            instrument.counts):
                        cumulative += count
                        labels = _format_labels(
                            key, (("le", _format_value(bound)),))
                        lines.append(
                            f"{name}_bucket{labels} {cumulative}")
                    cumulative += instrument.counts[-1]
                    labels = _format_labels(key, (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                    plain = _format_labels(key)
                    lines.append(
                        f"{name}_sum{plain} {_format_value(instrument.total)}")
                    lines.append(f"{name}_count{plain} {instrument.count}")
                else:
                    labels = _format_labels(key)
                    lines.append(
                        f"{name}{labels} {_format_value(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# -- module-level default registry -------------------------------------------

_REGISTRY = Registry(enabled=True)


def get_registry() -> Registry:
    """The process-wide default registry.

    The registry itself is always live (instruments are cheap); gating
    happens at the call sites, which consult ``telemetry.enabled()``
    before creating instruments at all.
    """
    return _REGISTRY


def reset_registry() -> None:
    _REGISTRY.reset()


def load_metrics(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
