"""Text rendering for traces and metrics (``repro trace`` / ``repro metrics``).

The span tree aggregates repeated spans by *path*: every sibling span
with the same name collapses into one node showing invocation count,
cumulative time, and self time (cumulative minus child cumulative).
Spans whose parent is missing from the file (e.g. a worker whose parent
ran in another trace) are grafted onto the root level rather than
dropped.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


class _Node:
    __slots__ = ("name", "count", "total", "child_total", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.child_total = 0.0
        self.children: Dict[str, "_Node"] = {}

    @property
    def self_time(self) -> float:
        return max(self.total - self.child_total, 0.0)


def split_records(records: Sequence[Dict[str, Any]]) -> (
        "Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]"):
    """Partition trace records into (manifests, spans)."""
    manifests = [r["manifest"] for r in records if "manifest" in r]
    spans = [r for r in records if "name" in r and "span" in r]
    return manifests, spans


def build_span_tree(spans: Sequence[Dict[str, Any]]) -> _Node:
    by_id = {r["span"]: r for r in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent not in by_id:
            parent = None  # orphan: graft onto the root level
        children.setdefault(parent, []).append(record)

    root = _Node("<root>")

    def _attach(node: _Node, records: List[Dict[str, Any]]) -> None:
        for record in records:
            child = node.children.get(record["name"])
            if child is None:
                child = _Node(record["name"])
                node.children[record["name"]] = child
            child.count += 1
            child.total += float(record.get("dur", 0.0))
            node.child_total += float(record.get("dur", 0.0))
            _attach(child, children.get(record["span"], []))

    _attach(root, children.get(None, []))
    root.total = root.child_total
    return root


def render_span_tree(spans: Sequence[Dict[str, Any]],
                     min_seconds: float = 0.0) -> str:
    if not spans:
        return "no spans recorded\n"
    root = build_span_tree(spans)
    grand_total = root.total or 1.0
    lines = [f"{'span':<44} {'count':>7} {'cum s':>10} "
             f"{'self s':>10} {'cum %':>7}"]

    def _emit(node: _Node, depth: int) -> None:
        ordered = sorted(node.children.values(),
                         key=lambda n: n.total, reverse=True)
        for child in ordered:
            if child.total < min_seconds:
                continue
            label = "  " * depth + child.name
            if len(label) > 44:
                label = label[:41] + "..."
            pct = 100.0 * child.total / grand_total
            lines.append(f"{label:<44} {child.count:>7d} "
                         f"{child.total:>10.4f} {child.self_time:>10.4f} "
                         f"{pct:>6.1f}%")
            _emit(child, depth + 1)

    _emit(root, 0)
    lines.append(f"{'total':<44} {'':>7} {root.total:>10.4f}")
    return "\n".join(lines) + "\n"


def render_manifest(manifest: Dict[str, Any]) -> str:
    substrates = manifest.get("substrates") or {}
    sub = " ".join(f"{tag}" for tag in substrates.values()) or "-"
    fields = [
        ("kind", manifest.get("kind", "-")),
        ("run", manifest.get("run_id") or "-"),
        ("kernel", manifest.get("kernel_backend", "-")),
        ("substrates", sub),
        ("numpy", manifest.get("numpy", "-")),
        ("numba", manifest.get("numba") or "absent"),
        ("python", manifest.get("python", "-")),
        ("seed", manifest.get("seed")),
        ("git", manifest.get("git") or "-"),
        ("host", manifest.get("host", "-")),
    ]
    lines = [f"  {name}: {value}" for name, value in fields
             if value is not None]
    return "manifest:\n" + "\n".join(lines) + "\n"


def render_metrics_table(data: Dict[str, Any]) -> str:
    """Render a Registry ``to_json()`` payload as an aligned table."""
    if not data:
        return "no metrics recorded\n"
    lines = [f"{'metric':<52} {'value':>14}"]
    for name in sorted(data):
        family = data[name]
        for entry in family.get("series", []):
            labels = entry.get("labels") or {}
            label_text = ",".join(f"{k}={v}"
                                  for k, v in sorted(labels.items()))
            label = f"{name}{{{label_text}}}" if label_text else name
            if len(label) > 52:
                label = label[:49] + "..."
            if family.get("kind") == "histogram":
                count = entry.get("count", 0)
                total = entry.get("sum", 0.0)
                mean = total / count if count else 0.0
                lines.append(f"{label:<52} {count:>8d} obs  "
                             f"sum={total:.4f}s mean={mean:.4f}s")
            else:
                value = entry.get("value", 0.0)
                if float(value).is_integer():
                    lines.append(f"{label:<52} {int(value):>14d}")
                else:
                    lines.append(f"{label:<52} {value:>14.4f}")
    return "\n".join(lines) + "\n"
