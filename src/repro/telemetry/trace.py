"""Hierarchical tracing spans with JSONL export.

The tracer is a strictly opt-in observability layer: with
``REPRO_TELEMETRY`` unset the module-level :func:`span` helper returns a
shared no-op singleton and the hot paths never allocate, never touch the
clock, and never take a lock.  The contract mirrors
``fluid.kernels.step_kernels_enabled()`` — callers consult
:func:`enabled` once per session/run and skip instrument setup entirely
when it is false.

Enablement (checked once at import, mutable via :func:`configure`):

* ``REPRO_TELEMETRY`` unset / ``""`` / ``"0"`` — disabled.
* ``"1"`` / ``"true"`` / ``"yes"`` / ``"on"`` — enabled, spans kept
  in-memory only (drain with :meth:`Tracer.drain`).
* any other value — treated as an output *directory*: spans are
  appended to ``<dir>/trace.jsonl`` and CLI commands/benches drop
  ``metrics.json`` beside it.

Span records are one JSON object per line::

    {"name": "sweep.point", "span": "1a2b.3", "parent": "1a2b.2",
     "wall": 1717171717.1, "dur": 0.0123, "pid": 6789,
     "run": "r-1a2b", "attrs": {"key": "p0"}}

Durations come from ``time.perf_counter()`` (monotonic); ``wall`` is a
``time.time()`` stamp used only for ordering across processes.  Export
is multi-process safe: each finished span is written as a single
``O_APPEND`` line, which the kernel keeps atomic for our record sizes,
so pool workers and the parent can share one ``trace.jsonl``.  Worker
spans are parented to the dispatching span via the picklable
:class:`SpanContext` (see :func:`current_context` / :func:`activate`).

Telemetry never touches RNG streams or arithmetic: the fp-identity of
every golden suite holds with tracing enabled or disabled.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

ENV_VAR = "REPRO_TELEMETRY"

_TRUTHY = ("1", "true", "yes", "on")

TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.json"


def _parse_env(value: Optional[str]) -> "tuple[bool, Optional[str]]":
    """Map an ``REPRO_TELEMETRY`` value to ``(enabled, trace_path)``."""
    if value is None or value == "" or value == "0":
        return False, None
    if value.lower() in _TRUTHY:
        return True, None
    return True, os.path.join(value, TRACE_FILENAME)


class _NoopSpan:
    """Shared do-nothing span returned whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """A single timed operation; use as a context manager."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_tracer",
                 "_start", "wall", "dur")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: Optional[str], attrs: Dict[str, Any]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer
        self._start = 0.0
        self.wall = 0.0
        self.dur = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.dur = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs.setdefault("error", getattr(exc_type, "__name__",
                                                   str(exc_type)))
        self._tracer._pop(self)
        self._tracer._record(self)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "wall": self.wall,
            "dur": self.dur,
            "pid": os.getpid(),
            "run": self._tracer.run_id,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class SpanContext:
    """Picklable handle for parenting spans across process boundaries.

    ``SweepRunner`` attaches the dispatching span's context to each pool
    task; the worker calls :func:`activate` so its spans land in the
    same ``trace.jsonl`` under the right parent.  A ``None`` context (or
    ``enabled=False``) makes :func:`activate` a no-op.
    """

    run_id: str
    span_id: Optional[str]
    trace_path: Optional[str]
    enabled: bool = True


class _Local(threading.local):
    def __init__(self) -> None:
        self.stack: List[Span] = []
        self.remote_parent: Optional[str] = None


class Tracer:
    """Produces hierarchical spans and exports them as JSONL."""

    def __init__(self, enabled: bool = True,
                 trace_path: Optional[str] = None,
                 run_id: Optional[str] = None) -> None:
        self.enabled = enabled
        self.trace_path = trace_path
        self.run_id = run_id or f"r-{os.getpid():x}-{int(time.time()):x}"
        self._local = _Local()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._finished: List[Dict[str, Any]] = []
        self._sink = None
        self._sink_pid = -1

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, /, **attrs: Any) -> Any:
        """Open a span; returns the no-op singleton when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        span_id = f"{os.getpid():x}.{seq:x}"
        stack = self._local.stack
        parent = stack[-1].span_id if stack else self._local.remote_parent
        return Span(self, name, span_id, parent, dict(attrs))

    def _push(self, span: Span) -> None:
        self._local.stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._local.stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)

    def _record(self, span: Span) -> None:
        record = span.as_dict()
        self._finished.append(record)
        if self.trace_path is not None:
            self._write_line(record)

    # -- export ----------------------------------------------------------

    def _write_line(self, record: Dict[str, Any]) -> None:
        # One O_APPEND write per record: atomic for our line sizes, so a
        # parent and its fork/spawn pool workers can share one file.
        if self._sink is None or self._sink_pid != os.getpid():
            directory = os.path.dirname(self.trace_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._sink = open(self.trace_path, "a", encoding="utf-8")
            self._sink_pid = os.getpid()
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")
        self._sink.flush()

    def write_record(self, record: Dict[str, Any]) -> None:
        """Append an arbitrary record (e.g. a manifest) to the trace."""
        if not self.enabled:
            return
        self._finished.append(dict(record))
        if self.trace_path is not None:
            self._write_line(record)

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the in-memory finished-span buffer."""
        out = self._finished
        self._finished = []
        return out

    @property
    def finished(self) -> List[Dict[str, Any]]:
        return list(self._finished)

    def flush(self) -> None:
        if self._sink is not None and self._sink_pid == os.getpid():
            self._sink.flush()

    # -- cross-process parenting ------------------------------------------

    def current_context(self) -> Optional[SpanContext]:
        if not self.enabled:
            return None
        stack = self._local.stack
        parent = stack[-1].span_id if stack else self._local.remote_parent
        return SpanContext(run_id=self.run_id, span_id=parent,
                           trace_path=self.trace_path, enabled=True)


# -- module-level default tracer ------------------------------------------

_ENABLED, _TRACE_PATH = _parse_env(os.environ.get(ENV_VAR))
_TRACER = Tracer(enabled=_ENABLED, trace_path=_TRACE_PATH)


def enabled() -> bool:
    """True when the module default tracer is recording spans."""
    return _TRACER.enabled


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str, /, **attrs: Any) -> Any:
    """Open a span on the default tracer (no-op singleton if disabled)."""
    if not _TRACER.enabled:
        return NOOP_SPAN
    return _TRACER.span(name, **attrs)


def trace_path() -> Optional[str]:
    return _TRACER.trace_path


def export_dir() -> Optional[str]:
    """Directory holding trace.jsonl (None when in-memory or disabled)."""
    if _TRACER.trace_path is None:
        return None
    return os.path.dirname(_TRACER.trace_path) or "."


def configure(enabled: bool = True, trace_path: Optional[str] = None,
              run_id: Optional[str] = None) -> Tracer:
    """Replace the module default tracer (programmatic opt-in)."""
    global _TRACER
    _TRACER = Tracer(enabled=enabled, trace_path=trace_path, run_id=run_id)
    return _TRACER


def configure_from_env() -> Tracer:
    """Re-read ``REPRO_TELEMETRY`` and rebuild the default tracer."""
    on, path = _parse_env(os.environ.get(ENV_VAR))
    return configure(enabled=on, trace_path=path)


def current_context() -> Optional[SpanContext]:
    """Picklable context for the active span (None when disabled)."""
    return _TRACER.current_context()


@contextmanager
def activate(ctx: Optional[SpanContext]) -> Iterator[None]:
    """Adopt a :class:`SpanContext` in a worker process.

    Ensures the default tracer matches the dispatcher's configuration
    (important under spawn, harmless under fork) and parents new
    top-level spans to ``ctx.span_id``.
    """
    if ctx is None or not ctx.enabled:
        yield
        return
    global _TRACER
    tracer = _TRACER
    if (not tracer.enabled or tracer.trace_path != ctx.trace_path
            or tracer.run_id != ctx.run_id):
        tracer = Tracer(enabled=True, trace_path=ctx.trace_path,
                        run_id=ctx.run_id)
        _TRACER = tracer
    prev = tracer._local.remote_parent
    tracer._local.remote_parent = ctx.span_id
    try:
        yield
    finally:
        tracer._local.remote_parent = prev
        tracer.flush()


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a trace.jsonl file, skipping malformed lines."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records
