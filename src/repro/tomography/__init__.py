"""Classical tomography baselines (the approach the paper inverts)."""

from repro.tomography.boolean import (
    BooleanTomographyResult,
    boolean_tomography,
    path_states,
    smallest_explanation,
)
from repro.tomography.lsq import LsqTomographyResult, lsq_tomography

__all__ = [
    "BooleanTomographyResult",
    "LsqTomographyResult",
    "boolean_tomography",
    "lsq_tomography",
    "path_states",
    "smallest_explanation",
]
