"""Classical Boolean network tomography baseline (DESIGN.md S16).

The approach the paper inverts: assume the network is neutral and
infer which links are congested from end-to-end path states. We
implement the standard congested-link localization in the style of
Nguyen & Thiran [22] and Duffield [13]:

* **Per interval**: a path is *good* when congestion-free; every link
  of a good path is good. Among the remaining candidate links, cover
  the bad paths greedily with the fewest links (smallest-explanation
  heuristic).
* **Aggregated**: each link's congestion probability is estimated as
  the fraction of intervals in which it was blamed.

This baseline is *sound only for neutral networks* — which is exactly
the paper's point: under differentiation it produces systematically
wrong answers, while the paper's algorithm flags the differentiation
itself. The comparison bench (bench_baseline) demonstrates this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

import numpy as np

from repro.core.network import Network
from repro.exceptions import MeasurementError
from repro.measurement.records import MeasurementData


@dataclass(frozen=True)
class BooleanTomographyResult:
    """Outcome of Boolean tomography.

    Attributes:
        link_congestion: ``{link: estimated congestion probability}``.
        blamed_counts: ``{link: number of intervals blamed}``.
        intervals: Number of intervals used.
    """

    link_congestion: Dict[str, float]
    blamed_counts: Dict[str, int]
    intervals: int


def path_states(
    data: MeasurementData,
    path_ids: Iterable[str],
    loss_threshold: float = 0.01,
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """Per-interval good/bad states: True = congestion-free.

    Intervals where a path sent nothing count as good for that path
    (no evidence of congestion).
    """
    ids = tuple(sorted(path_ids))
    states = np.ones((len(ids), data.num_intervals), dtype=bool)
    for i, pid in enumerate(ids):
        rec = data.record(pid)
        frac = rec.loss_fraction()
        states[i] = ~((frac >= loss_threshold) & (rec.sent > 0))
    return states, ids


def smallest_explanation(
    net: Network,
    good_paths: Set[str],
    bad_paths: Set[str],
) -> FrozenSet[str]:
    """Greedy minimal set of links explaining the bad paths.

    Links on any good path are exonerated; remaining links are chosen
    greedily by how many still-unexplained bad paths they cover.
    """
    exonerated: Set[str] = set()
    for pid in good_paths:
        exonerated |= net.links_of(pid)
    blamed: Set[str] = set()
    unexplained = set(bad_paths)
    while unexplained:
        best_link = None
        best_cover: Set[str] = set()
        for lid in net.link_ids:
            if lid in exonerated or lid in blamed:
                continue
            cover = {
                pid
                for pid in unexplained
                if lid in net.links_of(pid)
            }
            if len(cover) > len(best_cover) or (
                len(cover) == len(best_cover)
                and best_link is not None
                and cover
                and lid < best_link
            ):
                best_link, best_cover = lid, cover
        if not best_cover:
            break  # unexplainable paths (all their links exonerated)
        blamed.add(best_link)
        unexplained -= best_cover
    return frozenset(blamed)


def boolean_tomography(
    net: Network,
    data: MeasurementData,
    loss_threshold: float = 0.01,
) -> BooleanTomographyResult:
    """Run Boolean congested-link tomography over all intervals."""
    monitored = [pid for pid in net.path_ids if pid in data]
    if not monitored:
        raise MeasurementError("no monitored paths in the data")
    states, ids = path_states(data, monitored, loss_threshold)
    blamed_counts = {lid: 0 for lid in net.link_ids}
    for t in range(data.num_intervals):
        good = {pid for i, pid in enumerate(ids) if states[i, t]}
        bad = {pid for i, pid in enumerate(ids) if not states[i, t]}
        if not bad:
            continue
        for lid in smallest_explanation(net, good, bad):
            blamed_counts[lid] += 1
    link_congestion = {
        lid: count / data.num_intervals
        for lid, count in blamed_counts.items()
    }
    return BooleanTomographyResult(
        link_congestion=link_congestion,
        blamed_counts=blamed_counts,
        intervals=data.num_intervals,
    )
