"""Least-squares loss-rate tomography baseline (DESIGN.md S16).

The additive-metric counterpart of the Boolean baseline: express path
costs ``y = −log P(path congestion-free)`` as sums of link costs and
solve the (usually underdetermined) system with nonnegative least
squares. Like all classical tomography it *assumes neutrality*; the
benches show its estimates splitting incoherently when a link
differentiates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.core.linear import solve_least_squares
from repro.core.network import Network
from repro.core.pathsets import PathSetFamily, singletons
from repro.core.routing import routing_matrix
from repro.measurement.normalize import pathset_performance_numbers
from repro.measurement.records import MeasurementData


@dataclass(frozen=True)
class LsqTomographyResult:
    """Outcome of least-squares tomography.

    Attributes:
        link_costs: ``{link: estimated cost (−log P)}``.
        residual_norm: The fit residual; large values mean the neutral
            model cannot explain the observations.
        unique: Whether the system pinned the costs uniquely.
    """

    link_costs: Dict[str, float]
    residual_norm: float
    unique: bool


def lsq_tomography(
    net: Network,
    data: MeasurementData,
    family: PathSetFamily = None,
    loss_threshold: float = 0.01,
) -> LsqTomographyResult:
    """Estimate per-link costs assuming a neutral network.

    Args:
        net: The network.
        data: Raw measurements.
        family: Pathsets to fit over; defaults to all single paths
            present in the data.
        loss_threshold: Congestion threshold.
    """
    if family is None:
        family = tuple(
            ps
            for ps in singletons(net)
            if next(iter(ps)) in data
        )
    observations = pathset_performance_numbers(
        data, family, loss_threshold=loss_threshold
    )
    y = np.array([observations[ps] for ps in family])
    rm = routing_matrix(net, family)
    solution = solve_least_squares(rm.matrix, y, nonnegative=True)
    return LsqTomographyResult(
        link_costs={
            lid: float(x) for lid, x in zip(rm.columns, solution.x)
        },
        residual_norm=solution.residual_norm,
        unique=solution.unique,
    )
