"""Topologies: the paper's figure networks, evaluation topologies A
and B, and random generators."""

from repro.topology.dumbbell import (
    CLASS1_PATHS,
    CLASS2_PATHS,
    SHARED_LINK,
    DumbbellTopology,
    build_dumbbell,
)
from repro.topology.multi_isp import (
    NEUTRAL_BUSY_LINK,
    POLICED_LINKS,
    MultiIspTopology,
    build_multi_isp,
)
from repro.topology.generators import (
    chain_network,
    random_mesh_network,
    random_tree_network,
    random_two_class_performance,
    star_network,
)
from repro.topology.figures import (
    ALL_FIGURES,
    FigureNetwork,
    figure1,
    figure2,
    figure4,
    figure5,
    figure6,
)

__all__ = [
    "ALL_FIGURES",
    "CLASS1_PATHS",
    "CLASS2_PATHS",
    "DumbbellTopology",
    "MultiIspTopology",
    "NEUTRAL_BUSY_LINK",
    "POLICED_LINKS",
    "SHARED_LINK",
    "build_dumbbell",
    "build_multi_isp",
    "FigureNetwork",
    "figure1",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "chain_network",
    "random_mesh_network",
    "random_tree_network",
    "random_two_class_performance",
    "star_network",
]
