"""Experiment topology A: the dumbbell of Figure 7.

Four senders reach four receivers across one shared link ``l5``; each
path ``p_i`` is ``⟨l_i, l5, l_{5+i}⟩``. Paths ``p1, p2`` form class
``c1`` and ``p3, p4`` class ``c2`` (the paper always refers to the
pathsets this way, even in neutral experiments). In differentiation
experiments the shared link polices or shapes class-c2 traffic.

Every path pair shares exactly ``⟨l5⟩``, so Algorithm 1 examines the
single slice σ = (l5) with six path pairs — the "single shared link"
setting of §6.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.classes import ClassAssignment, two_classes
from repro.core.network import Network, Path
from repro.fluid.params import (
    AqmSpec,
    FluidLinkSpec,
    PolicerSpec,
    ShaperSpec,
    WeightedShaperSpec,
)

#: Id of the shared (possibly differentiating) link.
SHARED_LINK = "l5"

#: The measured paths, by class.
CLASS1_PATHS = ("p1", "p2")
CLASS2_PATHS = ("p3", "p4")


@dataclass(frozen=True)
class DumbbellTopology:
    """Topology A plus its class assignment and link specs.

    Attributes:
        network: The 9-link, 4-path graph of Figure 7(b).
        classes: ``c1 = {p1,p2}``, ``c2 = {p3,p4}``.
        link_specs: Fluid specs; only ``l5`` is a bottleneck (access
            and egress links run at 10× its capacity).
        differentiated: Whether ``l5`` polices/shapes class c2.
    """

    network: Network
    classes: ClassAssignment
    link_specs: Dict[str, FluidLinkSpec]
    differentiated: bool


def build_dumbbell(
    mechanism: Optional[str] = None,
    rate_fraction: float = 0.3,
    capacity_mbps: float = 100.0,
    buffer_rtt_seconds: float = 0.2,
) -> DumbbellTopology:
    """Build topology A.

    Args:
        mechanism: ``None`` (neutral ``l5``), ``"policing"``,
            ``"shaping"``, ``"aqm"`` (class-targeted early drop), or
            ``"weighted"`` (work-conserving weighted service).
        rate_fraction: Policing/shaping rate — or the weighted
            mechanism's service share — as a fraction of capacity
            (Table 1 sweeps 0.2–0.5); ignored by ``"aqm"``.
        capacity_mbps: Capacity of the shared link (Table 1 default
            100 Mbps); access links get 10×.
        buffer_rtt_seconds: Queue depth of the shared link in seconds
            (paper: sized by the maximum RTT through the queue).

    Returns:
        The :class:`DumbbellTopology`.
    """
    paths = [
        Path("p1", ("l1", SHARED_LINK, "l6")),
        Path("p2", ("l2", SHARED_LINK, "l7")),
        Path("p3", ("l3", SHARED_LINK, "l8")),
        Path("p4", ("l4", SHARED_LINK, "l9")),
    ]
    links = [f"l{i}" for i in range(1, 10)]
    net = Network(links, paths)
    classes = two_classes(net, CLASS2_PATHS)

    policer = None
    shaper = None
    aqm = None
    weighted = None
    if mechanism == "policing":
        policer = PolicerSpec(target_class="c2", rate_fraction=rate_fraction)
    elif mechanism == "shaping":
        shaper = ShaperSpec(target_class="c2", rate_fraction=rate_fraction)
    elif mechanism == "aqm":
        aqm = AqmSpec(target_class="c2")
    elif mechanism == "weighted":
        weighted = WeightedShaperSpec(
            target_class="c2", weight=rate_fraction
        )
    elif mechanism is not None:
        raise ValueError(f"unknown mechanism {mechanism!r}")

    specs: Dict[str, FluidLinkSpec] = {
        lid: FluidLinkSpec(capacity_mbps=10.0 * capacity_mbps)
        for lid in links
    }
    specs[SHARED_LINK] = FluidLinkSpec(
        capacity_mbps=capacity_mbps,
        buffer_rtt_seconds=buffer_rtt_seconds,
        policer=policer,
        shaper=shaper,
        aqm=aqm,
        weighted=weighted,
    )
    return DumbbellTopology(
        network=net,
        classes=classes,
        link_specs=specs,
        differentiated=mechanism is not None,
    )
