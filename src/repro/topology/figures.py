"""The example networks of the paper's theory sections (Figures 1–6).

Each function returns the network, the class assignment, and — when
the figure specifies one — a ground-truth performance model, so tests
and examples can reproduce the paper's worked examples verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.core.classes import ClassAssignment, PerformanceClass
from repro.core.network import Network, Path
from repro.core.performance import (
    LinkPerformance,
    NetworkPerformance,
    perf_from_probability,
)


@dataclass(frozen=True)
class FigureNetwork:
    """A worked example from the paper.

    Attributes:
        name: Which figure this reproduces.
        network: The graph ``G``.
        classes: The class assignment ``C``.
        non_neutral_links: The links the figure declares non-neutral.
        top_class: Top-priority class per non-neutral link.
        performance: Concrete performance numbers when the figure
            gives them (Figure 5), else a representative assignment
            consistent with the figure's description.
    """

    name: str
    network: Network
    classes: ClassAssignment
    non_neutral_links: FrozenSet[str]
    top_class: Mapping[str, str]
    performance: NetworkPerformance


def _perf(
    net: Network,
    classes: ClassAssignment,
    spec: Mapping[str, object],
) -> NetworkPerformance:
    """Helper: build NetworkPerformance from {link: float | {cls: float}}."""
    link_perf: Dict[str, LinkPerformance] = {}
    for lid in net.link_ids:
        value = spec.get(lid, 0.0)
        if isinstance(value, Mapping):
            link_perf[lid] = LinkPerformance.non_neutral(dict(value))
        else:
            link_perf[lid] = LinkPerformance.neutral(float(value), classes.names)
    return NetworkPerformance(net, classes, link_perf)


def figure1(
    x1_1: float = 0.05, x1_2: float = 0.40, x2: float = 0.02,
    x3: float = 0.03, x4: float = 0.01,
) -> FigureNetwork:
    """Figure 1: the running example.

    Links ``l1..l4``; paths ``p1 = ⟨l1,l2⟩``, ``p2 = ⟨l1,l3⟩``,
    ``p3 = ⟨l3,l4⟩``; classes ``{p1,p3}`` (top) and ``{p2}``. Link
    ``l1`` is non-neutral: it treats traffic from ``p2`` worse than
    from ``p1``. The violation is observable (paper §3.3, "Observable
    violation #1").
    """
    net = Network(
        ["l1", "l2", "l3", "l4"],
        [
            Path("p1", ("l1", "l2")),
            Path("p2", ("l1", "l3")),
            Path("p3", ("l3", "l4")),
        ],
    )
    classes = ClassAssignment(
        [
            PerformanceClass("c1", frozenset({"p1", "p3"})),
            PerformanceClass("c2", frozenset({"p2"})),
        ],
        net,
    )
    perf = _perf(
        net,
        classes,
        {
            "l1": {"c1": x1_1, "c2": x1_2},
            "l2": x2,
            "l3": x3,
            "l4": x4,
        },
    )
    return FigureNetwork(
        name="figure1",
        network=net,
        classes=classes,
        non_neutral_links=frozenset({"l1"}),
        top_class={"l1": "c1"},
        performance=perf,
    )


def figure2(
    x1_1: float = 0.05, x1_2: float = 0.50, x2: float = 0.02, x3: float = 0.03
) -> FigureNetwork:
    """Figure 2: a NON-observable violation.

    Paths ``p1 = ⟨l1,l2⟩``, ``p2 = ⟨l1,l3⟩``; classes ``{p1}`` (top)
    and ``{p2}``. ``l1`` throttles ``p2``, but the extra congestion
    can always be attributed to ``l3`` (the regulation virtual link
    ``l1+(c2)`` is indistinguishable from ``l3``), so no system of
    equations can reveal it.
    """
    net = Network(
        ["l1", "l2", "l3"],
        [Path("p1", ("l1", "l2")), Path("p2", ("l1", "l3"))],
    )
    classes = ClassAssignment(
        [
            PerformanceClass("c1", frozenset({"p1"})),
            PerformanceClass("c2", frozenset({"p2"})),
        ],
        net,
    )
    perf = _perf(
        net,
        classes,
        {"l1": {"c1": x1_1, "c2": x1_2}, "l2": x2, "l3": x3},
    )
    return FigureNetwork(
        name="figure2",
        network=net,
        classes=classes,
        non_neutral_links=frozenset({"l1"}),
        top_class={"l1": "c1"},
        performance=perf,
    )


def figure4(
    x1_1: float = 0.02, x1_low: float = 0.30,
    x2_1: float = 0.01, x2_low: float = 0.25,
    background: float = 0.005,
) -> FigureNetwork:
    """Figure 4: observable violation; ``⟨l1⟩`` identifiable, ``⟨l2⟩`` not.

    Links ``l1..l6``; paths ``p1 = ⟨l1,l2,l3⟩``, ``p2 = ⟨l1,l2,l4⟩``,
    ``p3 = ⟨l1,l2,l5⟩``, ``p4 = ⟨l1,l6⟩``; classes ``{p1}`` (top) and
    ``{p2,p3,p4}``. Links ``l1`` and ``l2`` are non-neutral. No path
    pair shares exactly ``⟨l2⟩`` (every pair through ``l2`` also
    shares ``l1``), so ``⟨l2⟩`` is non-identifiable while ``⟨l1⟩`` and
    ``⟨l1,l2⟩`` are identifiable — the worked example of §5.
    """
    net = Network(
        ["l1", "l2", "l3", "l4", "l5", "l6"],
        [
            Path("p1", ("l1", "l2", "l3")),
            Path("p2", ("l1", "l2", "l4")),
            Path("p3", ("l1", "l2", "l5")),
            Path("p4", ("l1", "l6")),
        ],
    )
    classes = ClassAssignment(
        [
            PerformanceClass("c1", frozenset({"p1"})),
            PerformanceClass("c2", frozenset({"p2", "p3", "p4"})),
        ],
        net,
    )
    perf = _perf(
        net,
        classes,
        {
            "l1": {"c1": x1_1, "c2": x1_low},
            "l2": {"c1": x2_1, "c2": x2_low},
            "l3": background,
            "l4": background,
            "l5": background,
            "l6": background,
        },
    )
    return FigureNetwork(
        name="figure4",
        network=net,
        classes=classes,
        non_neutral_links=frozenset({"l1", "l2"}),
        top_class={"l1": "c1", "l2": "c1"},
        performance=perf,
    )


def figure5() -> FigureNetwork:
    """Figure 5: observable via the pathset ``{p2,p3}`` correlation.

    Paths ``p1 = ⟨l1,l2⟩``, ``p2 = ⟨l1,l3⟩``, ``p3 = ⟨l1,l4⟩``;
    classes ``{p1}`` (top) and ``{p2,p3}``. ``l1`` congests class-2
    traffic with probability 0.5 while everything else is
    congestion-free: ``x1(1) = 0``, ``x1(2) = −log 0.5``,
    ``x2 = x3 = x4 = 0`` — the paper's exact numbers ("Observable
    violation #2"). The tell-tale is that p2 and p3 are always
    congested *together*, visible only through the pair measurement.
    """
    net = Network(
        ["l1", "l2", "l3", "l4"],
        [
            Path("p1", ("l1", "l2")),
            Path("p2", ("l1", "l3")),
            Path("p3", ("l1", "l4")),
        ],
    )
    classes = ClassAssignment(
        [
            PerformanceClass("c1", frozenset({"p1"})),
            PerformanceClass("c2", frozenset({"p2", "p3"})),
        ],
        net,
    )
    perf = _perf(
        net,
        classes,
        {
            "l1": {"c1": 0.0, "c2": perf_from_probability(0.5)},
            "l2": 0.0,
            "l3": 0.0,
            "l4": 0.0,
        },
    )
    return FigureNetwork(
        name="figure5",
        network=net,
        classes=classes,
        non_neutral_links=frozenset({"l1"}),
        top_class={"l1": "c1"},
        performance=perf,
    )


def figure6(
    x1_top: float = 0.02, x1_low: float = 0.35, background: float = 0.004
) -> FigureNetwork:
    """Figure 6's host network (same structure as Figure 4).

    The slice of ``⟨l1⟩`` merges each path's remainder into a logical
    link (``ρ1 = {l2,l3}`` → ``l23`` etc.); the slice construction in
    :mod:`repro.core.slices` reproduces the system of Figure 6(b).
    Only ``l1`` is non-neutral here (Figure 6 labels ``l2``
    non-identifiable but the worked system concerns ``l1``).
    """
    base = figure4(x1_1=x1_top, x1_low=x1_low, background=background)
    perf = _perf(
        base.network,
        base.classes,
        {
            "l1": {"c1": x1_top, "c2": x1_low},
            "l2": background,
            "l3": background,
            "l4": background,
            "l5": background,
            "l6": background,
        },
    )
    return FigureNetwork(
        name="figure6",
        network=base.network,
        classes=base.classes,
        non_neutral_links=frozenset({"l1"}),
        top_class={"l1": "c1"},
        performance=perf,
    )


ALL_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
}
