"""Random topology generators (DESIGN.md S13).

Parameterized families of networks for property testing and scaling
studies: trees (tomography's classical setting), stars/dumbbells, and
two-tier meshes in the spirit of topology B. All generators take an
explicit ``numpy.random.Generator`` and are fully deterministic for a
given seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classes import ClassAssignment, two_classes
from repro.core.network import Network, Path
from repro.core.performance import (
    LinkPerformance,
    NetworkPerformance,
)
from repro.exceptions import ConfigurationError


def star_network(num_spokes: int, hub_link: str = "hub") -> Network:
    """A star: every path crosses the hub link plus a private spoke.

    ``num_spokes`` paths ``p1..pN``, each ``⟨hub, s_i⟩``. The hub is
    the only shareable link — the minimal setting where Algorithm 1
    has work to do.
    """
    if num_spokes < 2:
        raise ConfigurationError("a star needs at least 2 spokes")
    paths = [
        Path(f"p{i}", (hub_link, f"s{i}"))
        for i in range(1, num_spokes + 1)
    ]
    links = [hub_link] + [f"s{i}" for i in range(1, num_spokes + 1)]
    return Network(links, paths)


def chain_network(num_hops: int, num_paths: int) -> Network:
    """Paths sharing a chain prefix of decreasing length.

    Path ``p_i`` traverses chain links ``c1..c_{num_hops-i+1}`` then a
    private exit link; consecutive paths share progressively shorter
    prefixes, producing nested shared sequences — the stress case for
    redundancy pruning.
    """
    if num_hops < 1 or num_paths < 2:
        raise ConfigurationError("need >= 1 hop and >= 2 paths")
    paths = []
    for i in range(1, num_paths + 1):
        depth = max(1, num_hops - (i - 1) % num_hops)
        links = tuple(f"c{k}" for k in range(1, depth + 1)) + (f"x{i}",)
        paths.append(Path(f"p{i}", links))
    link_ids = sorted({lid for p in paths for lid in p.links})
    return Network(link_ids, paths)


def random_tree_network(
    rng: np.random.Generator,
    num_leaves: int = 6,
    branching: int = 2,
) -> Network:
    """A rooted tree with one path per leaf pair via their LCA-ish root.

    Leaves hang off a random tree; each path connects two distinct
    leaves through the unique tree route. Trees are the setting where
    classical tomography is identifiable, so theory properties can be
    contrasted against the paper's slice-based approach.
    """
    if num_leaves < 2:
        raise ConfigurationError("need at least 2 leaves")
    # Build parent pointers: node 0 is the root.
    parents: Dict[int, int] = {}
    next_node = 1
    frontier = [0]
    leaves: List[int] = []
    while len(leaves) + len(frontier) < num_leaves + 1 or not leaves:
        node = frontier.pop(0)
        kids = int(rng.integers(1, branching + 1))
        for _ in range(kids):
            parents[next_node] = node
            frontier.append(next_node)
            next_node += 1
        if not frontier:
            break
        if len(parents) > 4 * num_leaves:
            break
    # Everything still in the frontier is a leaf.
    leaves = list(frontier)[:num_leaves]
    if len(leaves) < 2:
        # Degenerate draw: fall back to a 2-leaf star.
        return star_network(2)

    def route_to_root(node: int) -> List[str]:
        links = []
        while node in parents:
            links.append(f"e{node}")
            node = parents[node]
        return links

    paths = []
    pid = 1
    for i in range(len(leaves)):
        for j in range(i + 1, len(leaves)):
            up = route_to_root(leaves[i])
            down = route_to_root(leaves[j])
            shared = set(up) & set(down)
            links = [l for l in up if l not in shared] + list(
                reversed([l for l in down if l not in shared])
            )
            if not links:
                continue
            paths.append(Path(f"p{pid}", tuple(links)))
            pid += 1
    link_ids = sorted({lid for p in paths for lid in p.links})
    return Network(link_ids, paths)


def random_mesh_network(
    rng: np.random.Generator,
    num_stubs: int = 4,
    extra_edges: int = 2,
) -> Network:
    """A topology-B-style two-tier mesh.

    ``num_stubs`` backbone nodes in a ring plus ``extra_edges`` random
    chords; one access+ingress pair per stub; one path per stub pair
    routed over a shortest backbone route (ties broken by link id).
    """
    if num_stubs < 3:
        raise ConfigurationError("need at least 3 stubs")
    import networkx as nx

    g = nx.Graph()
    for i in range(num_stubs):
        g.add_edge(i, (i + 1) % num_stubs, lid=f"b{i}")
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 20 * extra_edges:
        attempts += 1
        a, b = rng.integers(0, num_stubs, size=2)
        if a == b or g.has_edge(int(a), int(b)):
            continue
        g.add_edge(int(a), int(b), lid=f"x{added}")
        added += 1

    paths = []
    pid = 1
    for i in range(num_stubs):
        for j in range(i + 1, num_stubs):
            route = nx.shortest_path(g, i, j)
            backbone = [
                g.edges[u, v]["lid"]
                for u, v in zip(route, route[1:])
            ]
            links = (
                [f"a{i}", f"in{i}"] + backbone + [f"in{j}", f"a{j}"]
            )
            paths.append(Path(f"p{pid}", tuple(links)))
            pid += 1
    link_ids = sorted({lid for p in paths for lid in p.links})
    return Network(link_ids, paths)


def random_two_class_performance(
    rng: np.random.Generator,
    net: Network,
    num_violations: int = 1,
    base_cost: float = 0.02,
    extra_cost: float = 0.3,
) -> Tuple[NetworkPerformance, ClassAssignment]:
    """Random ground truth: a two-class split and some violations.

    Args:
        rng: Seeded generator.
        net: The network.
        num_violations: How many links differentiate (capped by |L|).
        base_cost: Neutral per-link cost scale (uniform in
            ``[0, base_cost]``).
        extra_cost: Regulation cost scale for violating links.

    Returns:
        ``(performance, classes)`` with class ``c2`` holding a random
        nonempty proper subset of the paths.
    """
    path_ids = list(net.path_ids)
    if len(path_ids) < 2:
        raise ConfigurationError("need >= 2 paths for two classes")
    size = int(rng.integers(1, len(path_ids)))
    c2 = list(rng.choice(path_ids, size=size, replace=False))
    classes = two_classes(net, c2)

    link_ids = list(net.link_ids)
    k = min(num_violations, len(link_ids))
    violators = set(
        rng.choice(link_ids, size=k, replace=False).tolist()
    )
    perf: Dict[str, LinkPerformance] = {}
    for lid in link_ids:
        base = float(rng.uniform(0.0, base_cost))
        if lid in violators:
            perf[lid] = LinkPerformance.non_neutral(
                {
                    "c1": base,
                    "c2": base + float(rng.uniform(0.5, 1.0)) * extra_cost,
                }
            )
        else:
            perf[lid] = LinkPerformance.neutral(base, classes.names)
    return NetworkPerformance(net, classes, perf), classes
