"""Experiment topology B: the multi-ISP network of Figure 9.

The paper's figure shows a 24-link network: routers R1–R5 form a
tier-1 backbone, five tier-2 ISPs / content providers hang off it,
and three links implement policing — ``l14`` and ``l20`` throttle
long flows entering the backbone from two tier-2 networks, and ``l5``
throttles long flows crossing the backbone internally. The figure's
exact wiring is not fully recoverable from the paper, so this module
is a *reconstruction* in the same spirit (documented in DESIGN.md):

* Backbone routers ``B1..B5``: a chain ``B1–B2–B3–B4–B5`` plus
  shortcuts ``B1–B3`` (the policed ``l5``), ``B3–B5``, and three
  lightly-used cross links carrying background traffic.
* Five stub networks ``S1..S5``, one per backbone router. Each stub
  has a shared host-access link (dark/light hosts) and a separate
  white-host access link.
* Ingress links ``S_i–B_i``; the ingress of ``S2`` is the policed
  ``l14`` and the ingress of ``S5`` the policed ``l20``.
* Measured paths: one dark (short flows, class c1) and one light
  (long flows, class c2) path per stub pair — 20 paths. Five white
  paths provide unmeasured background traffic (class c1).

Link ids follow the paper where it matters: the policers are ``l5``,
``l14``, ``l20``; ``l13`` is a busy *neutral* ingress (the Figure 11
comparison pair is ``l13`` vs ``l14``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.classes import ClassAssignment, classes_from_mapping
from repro.core.network import Network, Path
from repro.fluid.params import FluidLinkSpec, PolicerSpec

#: The three policing links (ground truth for Figure 10).
POLICED_LINKS = ("l5", "l14", "l20")

#: The busy neutral ingress compared against l14 in Figure 11.
NEUTRAL_BUSY_LINK = "l13"

#: Shared host-access link per stub (dark + light hosts).
ACCESS = {1: "l1", 2: "l7", 3: "l11", 4: "l16", 5: "l21"}

#: White-host access link per stub.
WHITE_ACCESS = {1: "l2", 2: "l8", 3: "l12", 4: "l17", 5: "l22"}

#: Ingress link per stub (S_i – B_i).
INGRESS = {1: "l3", 2: "l14", 3: "l13", 4: "l18", 5: "l20"}

#: Backbone links.
BACKBONE = {
    ("B1", "B2"): "l4",
    ("B1", "B3"): "l5",
    ("B2", "B3"): "l6",
    ("B2", "B4"): "l9",
    ("B3", "B4"): "l10",
    ("B3", "B5"): "l15",
    ("B4", "B5"): "l19",
    ("B1", "B4"): "l23",
    ("B2", "B5"): "l24",
}

#: Backbone route (link ids) between stub pairs, chosen as the
#: weighted shortest paths described in the module docstring.
_BACKBONE_ROUTE: Dict[Tuple[int, int], Tuple[str, ...]] = {
    (1, 2): ("l4",),
    (1, 3): ("l5",),
    (1, 4): ("l5", "l10"),
    (1, 5): ("l5", "l15"),
    (2, 3): ("l6",),
    (2, 4): ("l6", "l10"),
    (2, 5): ("l6", "l15"),
    (3, 4): ("l10",),
    (3, 5): ("l15",),
    (4, 5): ("l19",),
}

#: White background routes, placed to exercise the otherwise unused
#: cross links l9, l23, l24.
_WHITE_ROUTES: Dict[Tuple[int, int], Tuple[str, ...]] = {
    (1, 4): ("l23",),
    (2, 5): ("l24",),
    (2, 4): ("l9",),
    (1, 2): ("l4",),
    (3, 5): ("l15",),
}

#: All stub pairs, ordered.
STUB_PAIRS: Tuple[Tuple[int, int], ...] = tuple(
    (i, j) for i in range(1, 6) for j in range(i + 1, 6)
)


def _measured_path(kind: str, i: int, j: int) -> Path:
    """A dark or light path between stubs i and j (shared access)."""
    links = (
        (ACCESS[i], INGRESS[i])
        + _BACKBONE_ROUTE[(i, j)]
        + (INGRESS[j], ACCESS[j])
    )
    return Path(f"{kind}{i}{j}", links)


def _white_path(i: int, j: int) -> Path:
    links = (
        (WHITE_ACCESS[i], INGRESS[i])
        + _WHITE_ROUTES[(i, j)]
        + (INGRESS[j], WHITE_ACCESS[j])
    )
    return Path(f"white{i}{j}", links)


@dataclass(frozen=True)
class MultiIspTopology:
    """Topology B with classes and link specs.

    Attributes:
        network: 24 links, 25 paths (10 dark + 10 light + 5 white).
        classes: ``c1`` = dark + white paths, ``c2`` = light paths.
        link_specs: Fluid specs; policers on ``l5``, ``l14``, ``l20``.
        dark_paths / light_paths / white_paths: Path-id groups.
    """

    network: Network
    classes: ClassAssignment
    link_specs: Dict[str, FluidLinkSpec]
    dark_paths: Tuple[str, ...]
    light_paths: Tuple[str, ...]
    white_paths: Tuple[str, ...]


@dataclass(frozen=True)
class FederatedTopology:
    """A federated observatory topology of ``S`` measured subnets.

    The Internet-scale generalization of topology B used by the
    multi-ISP scaling work (DESIGN.md S20): ``S`` ISPs with ``H``
    vantage hosts each, a full backbone mesh between them, and one
    measured path per host pair — intra-subnet pairs through the
    subnet core, cross-subnet pairs through per-destination egress
    links and the backbone. All wiring is deterministic in
    ``(num_isps, hosts_per_isp)``.

    Attributes:
        network: ``S·C(H,2)`` intra + ``C(S,2)·H²`` cross paths.
        num_isps / hosts_per_isp: The generator parameters.
        intra_paths / cross_paths: Path-id groups.
        subnet_of: ``{path_id: primary ISP name}`` (source subnet).
        link_owner: ``{link_id: ISP name}`` — the administrative
            partition of the links. Access, core, and egress links
            belong to their subnet; the backbone link between ISPs
            ``i < j`` is owned by ISP ``i``. This is the canonical
            link partition for sharded inference
            (:meth:`shard_plan`).
    """

    network: Network
    num_isps: int
    hosts_per_isp: int
    intra_paths: Tuple[str, ...]
    cross_paths: Tuple[str, ...]
    subnet_of: Mapping[str, str]
    link_owner: Mapping[str, str]

    def shard_plan(self):
        """The per-ISP :class:`~repro.core.sharding.ShardPlan` derived
        from :attr:`link_owner`."""
        from repro.core.sharding import ShardPlan  # local: avoid cycle

        return ShardPlan.from_link_partition(self.network, self.link_owner)


def isp_name(k: int) -> str:
    """Canonical ISP/shard name for subnet ``k``."""
    return f"isp{k}"


def build_federated_multi_isp(
    num_isps: int = 8,
    hosts_per_isp: int = 13,
) -> FederatedTopology:
    """Build a federated ``S``-subnet, ``H``-hosts-per-subnet topology.

    Per subnet ``k``: host access links ``a{k}_{h}`` and a subnet core
    ``c{k}``; intra paths ``i{k}_{u}_{v} = ⟨a{k}_{u}, c{k}, a{k}_{v}⟩``
    for every host pair ``u < v``. Per ordered subnet pair ``(k, m)``:
    an egress link ``g{k}_{m}``; per unordered pair ``i < j``: a
    backbone link ``b{i}_{j}`` and cross paths
    ``x{i}_{u}_{j}_{v} = ⟨a{i}_{u}, g{i}_{j}, b{i}_{j}, g{j}_{i},
    a{j}_{v}⟩`` for every host pair. The defaults give 5356 paths over
    196 links — the ≥5k-path scale gated by
    ``benchmarks/bench_multi_isp.py``.

    Args:
        num_isps: ``S ≥ 2`` federated subnets.
        hosts_per_isp: ``H ≥ 2`` vantage hosts per subnet.

    Returns:
        The :class:`FederatedTopology`.
    """
    if num_isps < 2 or hosts_per_isp < 2:
        raise ValueError("need num_isps >= 2 and hosts_per_isp >= 2")
    links: List[str] = []
    link_owner: Dict[str, str] = {}
    for k in range(num_isps):
        owned = [f"c{k}"]
        owned += [f"a{k}_{h}" for h in range(hosts_per_isp)]
        owned += [f"g{k}_{m}" for m in range(num_isps) if m != k]
        owned += [f"b{k}_{j}" for j in range(k + 1, num_isps)]
        links.extend(owned)
        link_owner.update({lid: isp_name(k) for lid in owned})

    paths: List[Path] = []
    subnet_of: Dict[str, str] = {}
    intra: List[str] = []
    cross: List[str] = []
    for k in range(num_isps):
        for u in range(hosts_per_isp):
            for v in range(u + 1, hosts_per_isp):
                pid = f"i{k}_{u}_{v}"
                paths.append(
                    Path(pid, (f"a{k}_{u}", f"c{k}", f"a{k}_{v}"))
                )
                intra.append(pid)
                subnet_of[pid] = isp_name(k)
    for i in range(num_isps):
        for j in range(i + 1, num_isps):
            for u in range(hosts_per_isp):
                for v in range(hosts_per_isp):
                    pid = f"x{i}_{u}_{j}_{v}"
                    paths.append(
                        Path(
                            pid,
                            (
                                f"a{i}_{u}",
                                f"g{i}_{j}",
                                f"b{i}_{j}",
                                f"g{j}_{i}",
                                f"a{j}_{v}",
                            ),
                        )
                    )
                    cross.append(pid)
                    subnet_of[pid] = isp_name(i)
    return FederatedTopology(
        network=Network(links, paths),
        num_isps=num_isps,
        hosts_per_isp=hosts_per_isp,
        intra_paths=tuple(intra),
        cross_paths=tuple(cross),
        subnet_of=subnet_of,
        link_owner=link_owner,
    )


def build_multi_isp(
    policing_rate: float = 0.3,
    backbone_capacity_mbps: float = 100.0,
    access_capacity_mbps: float = 1000.0,
    policed: Tuple[str, ...] = POLICED_LINKS,
) -> MultiIspTopology:
    """Build topology B.

    Args:
        policing_rate: Rate fraction of the three policers.
        backbone_capacity_mbps: Capacity of backbone and ingress
            links (the paper's 100 Mbps bottlenecks).
        access_capacity_mbps: Capacity of host access links.
        policed: Which links police class c2 (default: the paper's
            three; pass ``()`` for an all-neutral variant).

    Returns:
        The :class:`MultiIspTopology`.
    """
    dark = [_measured_path("dark", i, j) for i, j in STUB_PAIRS]
    light = [_measured_path("light", i, j) for i, j in STUB_PAIRS]
    white = [_white_path(i, j) for i, j in sorted(_WHITE_ROUTES)]
    paths = dark + light + white

    link_ids = [f"l{k}" for k in range(1, 25)]
    net = Network(link_ids, paths)

    mapping = {p.id: "c1" for p in dark + white}
    mapping.update({p.id: "c2" for p in light})
    classes = classes_from_mapping(net, mapping)

    access_links = set(ACCESS.values()) | set(WHITE_ACCESS.values())
    specs: Dict[str, FluidLinkSpec] = {}
    for lid in link_ids:
        capacity = (
            access_capacity_mbps if lid in access_links
            else backbone_capacity_mbps
        )
        policer = (
            PolicerSpec(target_class="c2", rate_fraction=policing_rate)
            if lid in policed
            else None
        )
        specs[lid] = FluidLinkSpec(capacity_mbps=capacity, policer=policer)
    return MultiIspTopology(
        network=net,
        classes=classes,
        link_specs=specs,
        dark_paths=tuple(p.id for p in dark),
        light_paths=tuple(p.id for p in light),
        white_paths=tuple(p.id for p in white),
    )
