"""Workload profiles: Table 1 parameter space and Table 3 host groups."""

from repro.workloads.profiles import (
    TABLE1,
    TABLE3,
    HostGroupProfile,
    ParameterTable,
    class_workload,
    group_workload,
    slots_for_size,
)

__all__ = [
    "TABLE1",
    "TABLE3",
    "HostGroupProfile",
    "ParameterTable",
    "class_workload",
    "group_workload",
    "slots_for_size",
]
