"""The paper's workload parameter space (Tables 1 and 3).

``TABLE1`` encodes the global parameter grid with its defaults;
``TABLE3`` encodes topology B's three host groups. The helper
:func:`slots_for_size` captures the calibration the paper hints at in
Table 1's "parallel TCP flows per path ∈ {1, 12, 15, 20, 70}": short
flows need high parallelism to keep a path continuously present on
the wire (a 1 Mb transfer at a congested link lasts well under a
second, so 15 slots with 10-second gaps would leave the path idle
most of the time and starve both the measurements and the
differentiation mechanisms of traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.fluid.params import FlowSlotSpec, PathWorkload


@dataclass(frozen=True)
class ParameterTable:
    """Table 1: the experiment parameter space. Defaults in bold in
    the paper are the ``default_*`` fields here."""

    bottleneck_capacity_mbps: Tuple[float, ...] = (100.0,)
    rtt_ms: Tuple[float, ...] = (50.0, 80.0, 120.0, 200.0)
    rate_percent: Tuple[float, ...] = (20.0, 30.0, 40.0, 50.0)
    congestion_control: Tuple[str, ...] = ("cubic", "newreno")
    flows_per_path: Tuple[int, ...] = (1, 12, 15, 20, 70)
    mean_flow_size_mb: Tuple[float, ...] = (1.0, 10.0, 40.0, 10000.0)
    mean_gap_seconds: Tuple[float, ...] = (10.0,)
    loss_threshold_percent: Tuple[float, ...] = (1.0, 5.0, 10.0)
    measurement_interval_ms: Tuple[float, ...] = (100.0, 200.0, 500.0)

    default_capacity_mbps: float = 100.0
    default_rtt_ms: float = 50.0
    default_rate_percent: float = 30.0
    default_congestion_control: str = "cubic"
    default_flows_per_path: int = 15
    default_mean_flow_size_mb: float = 10.0
    default_mean_gap_seconds: float = 10.0
    default_loss_threshold_percent: float = 1.0
    default_measurement_interval_ms: float = 100.0


#: The canonical Table 1 instance.
TABLE1 = ParameterTable()


def slots_for_size(mean_size_mb: float) -> int:
    """Parallel-slot count keeping a path continuously busy.

    1 Mb flows get Table 1's 70 parallel slots; everything from the
    10 Mb default upward uses the default 15.
    """
    if mean_size_mb < 2.0:
        return 70
    if mean_size_mb < 10.0:
        return 30
    return TABLE1.default_flows_per_path


def class_workload(
    path_ids,
    mean_size_mb: float,
    rtt_ms: float = TABLE1.default_rtt_ms,
    congestion_control: str = TABLE1.default_congestion_control,
    mean_gap_seconds: float = TABLE1.default_mean_gap_seconds,
    flows_per_path: int = None,
    measured: bool = True,
) -> Dict[str, PathWorkload]:
    """A homogeneous workload for one class of paths."""
    slots_n = (
        flows_per_path if flows_per_path is not None
        else slots_for_size(mean_size_mb)
    )
    slot = FlowSlotSpec(
        mean_size_mb=mean_size_mb, mean_gap_seconds=mean_gap_seconds
    )
    workload = PathWorkload(
        slots=(slot,) * slots_n,
        rtt_seconds=rtt_ms / 1000.0,
        congestion_control=congestion_control,
        measured=measured,
    )
    return {pid: workload for pid in path_ids}


@dataclass(frozen=True)
class HostGroupProfile:
    """One row of Table 3: a topology-B end-host group's flow mix.

    Attributes:
        name: ``dark``, ``light``, or ``white``.
        flow_sizes_mb: One parallel slot per entry, of that fixed size
            (``pareto_shape = 0``; Table 3 lists exact sizes).
        measured: White hosts provide background traffic only.
    """

    name: str
    flow_sizes_mb: Tuple[float, ...]
    measured: bool


#: Table 3. Dark-gray hosts exchange short flows; light-gray hosts
#: exchange the long (policed) flows; white hosts exchange a mix but
#: do not participate in measurements.
TABLE3: Mapping[str, HostGroupProfile] = {
    "dark": HostGroupProfile(
        name="dark", flow_sizes_mb=(1.0, 10.0, 40.0), measured=True
    ),
    "light": HostGroupProfile(
        name="light", flow_sizes_mb=(10000.0,), measured=True
    ),
    "white": HostGroupProfile(
        name="white",
        flow_sizes_mb=(1.0, 10.0, 40.0, 10000.0),
        measured=False,
    ),
}


def group_workload(
    profile: HostGroupProfile,
    rtt_ms: float = TABLE1.default_rtt_ms,
    congestion_control: str = TABLE1.default_congestion_control,
    mean_gap_seconds: float = TABLE1.default_mean_gap_seconds,
    parallel_copies: int = 1,
) -> PathWorkload:
    """Instantiate one path's workload from a Table 3 host group.

    Args:
        profile: The host group.
        parallel_copies: Replicate the whole mix this many times (the
            paper's "1×1Mb + 1×10Mb + 1×40Mb" notation is one copy).
    """
    slots = tuple(
        FlowSlotSpec(
            mean_size_mb=size,
            mean_gap_seconds=mean_gap_seconds,
            pareto_shape=0.0,
        )
        for _ in range(parallel_copies)
        for size in profile.flow_sizes_mb
    )
    return PathWorkload(
        slots=slots,
        rtt_seconds=rtt_ms / 1000.0,
        congestion_control=congestion_control,
        measured=profile.measured,
    )
