"""Tests for analysis helpers."""

import math

import numpy as np
import pytest

from repro.analysis.stats import (
    boxplot_summary,
    format_table,
    series_summary,
)


def test_boxplot_summary():
    s = boxplot_summary([0.1, 0.2, 0.3, 0.4, 0.5])
    assert s.minimum == 0.1
    assert s.median == 0.3
    assert s.maximum == 0.5
    assert s.count == 5


def test_boxplot_summary_empty():
    s = boxplot_summary([])
    assert math.isnan(s.median)
    assert s.count == 0


def test_boxplot_format():
    text = boxplot_summary([0.01, 0.02]).format()
    assert "%" in text and "n=2" in text


def test_format_table_alignment():
    text = format_table(["a", "bee"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "---" in lines[1]


def test_series_summary():
    mean, p95, peak = series_summary(np.array([0.0, 1.0, 2.0, 10.0]))
    assert mean == pytest.approx(3.25)
    assert peak == 10.0
    assert p95 <= peak


def test_series_summary_empty():
    assert all(math.isnan(v) for v in series_summary(np.array([])))
