"""Suite-wide fixtures.

The tier-1 suite's golden and fp-identity contracts (scalar-engine
goldens, batch==single bitwise equivalence, session==one-shot
bit-identity) pin the *numpy* step loop's arithmetic. On a machine
with numba installed the kernel module would default to the fused
backend, whose results differ at fp tolerance — so every test runs
with the backend pinned to numpy unless it opts in via
``repro.fluid.kernels.use_backend`` (as the kernel-equivalence suite
does). The environment variable is pinned too, so subprocess workers
(sweep pools, subprocess-based tests) inherit the same backend.
"""

import os

import pytest

from repro import telemetry
from repro.fluid import kernels


@pytest.fixture(autouse=True)
def _pin_numpy_kernel_backend(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "numpy")
    prev = kernels.set_backend("numpy")
    try:
        yield
    finally:
        kernels.set_backend(prev)


@pytest.fixture(autouse=True)
def _telemetry_disabled(monkeypatch):
    """Pin telemetry off (and its registry clean) for every test.

    The tier-1 contracts are asserted on the no-op fast path — the
    state the suite inherits on a developer machine regardless of any
    ambient ``REPRO_TELEMETRY``. Tests that exercise telemetry opt in
    via ``telemetry.configure`` and are restored here afterwards.
    """
    monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
    telemetry.configure(enabled=False)
    telemetry.reset_registry()
    kernels.reset_kernel_call_counts()
    try:
        yield
    finally:
        telemetry.configure(enabled=False)
        telemetry.reset_registry()
        kernels.reset_kernel_call_counts()
