"""Shared configuration for the inference golden equivalence suite.

The golden file (``golden/inference_goldens.json``) holds Algorithm
1/2 outputs — identified / neutral / skipped sequence sets,
unsolvability scores, and normalized observations — captured from the
*pre-vectorization* inference pipeline (the seed implementation, now
frozen as :mod:`repro.core.algorithm_reference`) on a locked set of
seed topologies: the paper figures, star/chain/tree/mesh generator
draws, and the multi-ISP measured subnetwork, in exact and scored
modes (plus one sampled-normalization case).

The equivalence test re-runs the same cases on the vectorized
pipeline and compares: the identified/neutral/skipped *sets* must be
identical, scores and observations equal within fp tolerance.

Regenerate (only if the *reference* semantics legitimately change)
with::

    PYTHONPATH=src:tests/core python tests/core/inference_golden_config.py
"""

import json
import os

import numpy as np

from repro.core.classes import classes_from_mapping
from repro.core.performance import performance_with_violations
from repro.measurement.synthetic import synthesize_records
from repro.topology.generators import (
    chain_network,
    random_mesh_network,
    random_tree_network,
    random_two_class_performance,
    star_network,
)
from repro.topology.figures import ALL_FIGURES
from repro.topology.multi_isp import (
    POLICED_LINKS,
    build_federated_multi_isp,
    build_multi_isp,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "inference_goldens.json"
)

#: Normalization rng seed for scored/sampled cases (fresh per case).
NORM_SEED = 123

#: Per-case interval-count overrides (default 1200). The ≥1k-path
#: federated case uses fewer intervals to keep the suite fast.
CASE_INTERVALS = {"fed5x10": 400}

#: Cases whose scored golden entry omits the per-pathset observation
#: dump (≈10⁵ pathsets — the dense/sparse differential tests cover
#: the observation layer instead).
SKIP_OBSERVATION_GOLDENS = frozenset({"fed5x10"})

#: Cases excluded from the frozen-reference side-by-side runs (the
#: reference implementation is intentionally O(P²) Python and would
#: dominate the suite at ≥1k paths).
REFERENCE_EXEMPT = frozenset({"fed5x10"})

#: The federated multi-ISP cases (PR 6): two small exhaustively
#: checked topologies plus one ≥1k-path generated one.
FEDERATED_CASE_NAMES = ("fed2x3", "fed3x4", "fed5x10")


def _multi_isp_case():
    """The measured (dark+light) multi-ISP subnetwork + ground truth."""
    topo = build_multi_isp()
    measured = topo.dark_paths + topo.light_paths
    net = topo.network.restricted_to_paths(measured)
    mapping = {pid: "c1" for pid in topo.dark_paths}
    mapping.update({pid: "c2" for pid in topo.light_paths})
    classes = classes_from_mapping(net, mapping)
    perf = performance_with_violations(
        net,
        classes,
        {lid: 0.008 for lid in net.link_ids},
        {
            lid: {"c1": 0.02, "c2": 0.35}
            for lid in POLICED_LINKS
            if lid in net.links
        },
    )
    return net, perf


def build_cases():
    """The locked case list: ``{name: (net, perf, min_pathsets, mode)}``.

    Construction is fully deterministic (fixed seeds) so capture and
    test see byte-identical inputs.
    """
    cases = {}
    for name, mp in (
        ("figure1", 3),
        ("figure2", 3),
        ("figure4", 5),
        ("figure5", 5),
        ("figure6", 5),
    ):
        fig = ALL_FIGURES[name]()
        cases[name] = (fig.network, fig.performance, mp, "expected")

    net = star_network(12)
    perf, _ = random_two_class_performance(
        np.random.default_rng(11), net, num_violations=1
    )
    cases["star12"] = (net, perf, 5, "expected")

    net = chain_network(4, 8)
    perf, _ = random_two_class_performance(
        np.random.default_rng(12), net, num_violations=2
    )
    cases["chain4x8"] = (net, perf, 5, "expected")

    net = random_tree_network(np.random.default_rng(13), num_leaves=8)
    perf, _ = random_two_class_performance(
        np.random.default_rng(14), net, num_violations=2
    )
    cases["tree8"] = (net, perf, 5, "expected")

    net = random_mesh_network(np.random.default_rng(15), 6, 2)
    perf, _ = random_two_class_performance(
        np.random.default_rng(16), net, num_violations=2
    )
    cases["mesh6"] = (net, perf, 5, "expected")

    cases["multi_isp"] = _multi_isp_case() + (5, "expected")

    net = star_network(10)
    perf, _ = random_two_class_performance(
        np.random.default_rng(17), net, num_violations=1
    )
    cases["star10_sampled"] = (net, perf, 5, "sampled")

    for name, (num_isps, hosts, seed, violations) in {
        "fed2x3": (2, 3, 21, 2),
        "fed3x4": (3, 4, 22, 3),
        "fed5x10": (5, 10, 23, 3),
    }.items():
        fed = build_federated_multi_isp(num_isps, hosts)
        perf, _ = random_two_class_performance(
            np.random.default_rng(seed), fed.network, num_violations=violations
        )
        cases[name] = (fed.network, perf, 5, "expected")
    return cases


def case_records(name, net, perf, num_intervals=None):
    """Deterministic synthetic records for one case."""
    if num_intervals is None:
        num_intervals = CASE_INTERVALS.get(name, 1200)
    seed = sum(ord(c) for c in name)
    return synthesize_records(
        perf,
        np.random.default_rng(seed),
        num_intervals=num_intervals,
    )


def sigma_key(sigma):
    return ",".join(sigma)


def pathset_key(ps):
    return "|".join(sorted(ps))


def result_to_dict(result):
    return {
        "identified": sorted(sigma_key(s) for s in result.identified),
        "identified_raw": sorted(
            sigma_key(s) for s in result.identified_raw
        ),
        "neutral": sorted(sigma_key(s) for s in result.neutral),
        "skipped": sorted(sigma_key(s) for s in result.skipped),
        "scores": {
            sigma_key(s): float(v) for s, v in sorted(result.scores.items())
        },
    }


def capture_entry(name, net, perf, mp, mode):
    """One golden entry from the current implementation."""
    from repro.core.algorithm import (
        identify_non_neutral,
        identify_non_neutral_exact,
    )
    from repro.core.slices import build_slice_system, shared_sequences
    from repro.measurement.normalize import pathset_performance_numbers

    entry = {"min_pathsets": mp, "mode": mode}
    entry["exact"] = result_to_dict(
        identify_non_neutral_exact(perf, min_pathsets=mp)
    )
    data = case_records(name, net, perf)
    rng = np.random.default_rng(NORM_SEED)
    observations = {}
    for sigma, pairs in sorted(shared_sequences(net).items()):
        system = build_slice_system(net, sigma, pairs)
        if system is None or system.num_pathsets < mp:
            continue
        observations.update(
            pathset_performance_numbers(
                data, system.family, mode=mode, rng=rng
            )
        )
    algorithm = identify_non_neutral(net, observations, min_pathsets=mp)
    scored = result_to_dict(algorithm)
    if name not in SKIP_OBSERVATION_GOLDENS:
        scored["observations"] = {
            pathset_key(ps): float(v)
            for ps, v in sorted(
                observations.items(), key=lambda kv: pathset_key(kv[0])
            )
        }
    entry["scored"] = scored
    return entry


def capture(only=None):
    """Capture goldens from the current implementation.

    With ``only`` (a list of case names), existing entries are
    preserved verbatim and just the named cases are (re)computed and
    merged in — the mode used to add the federated multi-ISP cases
    *before* the sparse rewrite, per the PR-6 differential-test
    protocol. Without ``only``, everything is regenerated (run only
    if the *reference* semantics legitimately change).
    """
    goldens = {}
    if only is not None and os.path.exists(GOLDEN_PATH):
        with open(GOLDEN_PATH) as fh:
            goldens = json.load(fh)
    for name, (net, perf, mp, mode) in build_cases().items():
        if only is not None and name not in only:
            continue
        goldens[name] = capture_entry(name, net, perf, mp, mode)
        print(f"captured {name}")
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(goldens, fh, indent=1, sort_keys=True)
    print(
        f"captured {len(goldens)} cases -> {GOLDEN_PATH} "
        f"({os.path.getsize(GOLDEN_PATH)} bytes)"
    )


if __name__ == "__main__":
    import sys

    capture(only=sys.argv[1:] or None)
