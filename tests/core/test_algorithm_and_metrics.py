"""Tests for Algorithm 1, redundancy pruning, and quality metrics."""

import math

import pytest

from repro.core.algorithm import (
    identify_non_neutral,
    identify_non_neutral_exact,
    remove_redundant,
    required_pathsets,
)
from repro.core.metrics import (
    evaluate,
    false_negative_rate,
    false_positive_rate,
    granularity,
)
from repro.core.performance import neutral_performance
from repro.topology.figures import figure4, figure6


class TestAlgorithmExact:
    def test_paper_worked_example(self):
        """§5's example on Figure 4: Σn̄ = {⟨l1⟩, ⟨l1,l2⟩}, FN = FP = 0,
        granularity 1.5."""
        fig = figure4()
        result = identify_non_neutral_exact(fig.performance)
        assert set(result.identified) == {("l1",), ("l1", "l2")}
        report = evaluate(
            result, fig.non_neutral_links, fig.network.link_ids
        )
        assert report.false_negative_rate == 0.0
        assert report.false_positive_rate == 0.0
        assert report.granularity == pytest.approx(1.5)

    def test_neutral_network_identifies_nothing(self):
        fig = figure4()
        perf = neutral_performance(
            fig.network, fig.classes, {"l1": 0.3, "l2": 0.2}
        )
        result = identify_non_neutral_exact(perf)
        assert result.identified == ()
        assert len(result.neutral) >= 1

    def test_figure6_localizes_l1(self):
        fig = figure6()  # only l1 non-neutral
        result = identify_non_neutral_exact(fig.performance)
        assert ("l1",) in result.identified

    def test_skipped_sequences_have_few_pathsets(self):
        fig = figure4()
        result = identify_non_neutral_exact(fig.performance)
        for sigma in result.skipped:
            assert sigma not in result.systems

    def test_zero_false_positives_invariant(self):
        """With exact observations the output contains no sequence of
        only-neutral links (the paper's headline guarantee)."""
        fig = figure6()
        result = identify_non_neutral_exact(fig.performance)
        for sigma in result.identified:
            assert set(sigma) & fig.non_neutral_links


class TestAlgorithmScored:
    def test_observation_driven_matches_exact(self):
        fig = figure4()
        obs = {}
        for system in identify_non_neutral_exact(
            fig.performance
        ).systems.values():
            for ps in system.family:
                obs[ps] = fig.performance.pathset_performance(ps)
        result = identify_non_neutral(fig.network, obs)
        assert set(result.identified) == {("l1",), ("l1", "l2")}

    def test_custom_decider(self):
        fig = figure4()
        obs = {}
        for system in identify_non_neutral_exact(
            fig.performance
        ).systems.values():
            for ps in system.family:
                obs[ps] = fig.performance.pathset_performance(ps)
        everything_neutral = lambda scores: {s: False for s in scores}
        result = identify_non_neutral(
            fig.network, obs, decider=everything_neutral
        )
        assert result.identified == ()

    def test_required_pathsets_cover_all_systems(self):
        fig = figure4()
        needed = set(required_pathsets(fig.network))
        exact = identify_non_neutral_exact(fig.performance)
        for system in exact.systems.values():
            assert set(system.family) <= needed


class TestRedundancyPruning:
    def test_paper_redundancy_example(self):
        """⟨l1,l2,l3⟩ is redundant given ⟨l1,l2⟩ and ⟨l2,l3⟩."""
        identified = [("l1", "l2"), ("l2", "l3"), ("l1", "l2", "l3")]
        examined = list(identified)
        kept = remove_redundant(identified, examined)
        assert set(kept) == {("l1", "l2"), ("l2", "l3")}

    def test_needs_an_identified_member(self):
        """A decomposition of only-neutral sequences does not make a
        sequence redundant."""
        identified = [("l1", "l2", "l3")]
        examined = [("l1", "l2"), ("l2", "l3"), ("l1", "l2", "l3")]
        kept = remove_redundant(identified, examined)
        assert kept == (("l1", "l2", "l3"),)

    def test_union_must_be_exact(self):
        identified = [("l1", "l2"), ("l1", "l2", "l3", "l4")]
        examined = list(identified)
        kept = remove_redundant(identified, examined)
        assert set(kept) == set(identified)

    def test_sequence_not_redundant_by_itself(self):
        identified = [("l1", "l2")]
        kept = remove_redundant(identified, identified)
        assert kept == (("l1", "l2"),)


class TestMetrics:
    def test_false_negative_rate(self):
        assert false_negative_rate([("l1",)], {"l1", "l2"}) == 0.5
        assert false_negative_rate([], {"l1"}) == 1.0
        assert false_negative_rate([], set()) == 0.0

    def test_false_positive_rate_only_pure_neutral_sequences(self):
        # ⟨l1,l9⟩ contains non-neutral l1: l9 inside it is NOT an FP.
        rate = false_positive_rate(
            [("l1", "l9")], neutral_links={"l9", "l8"},
            non_neutral_links={"l1"},
        )
        assert rate == 0.0
        # ⟨l8,l9⟩ is purely neutral: both members are FPs.
        rate = false_positive_rate(
            [("l8", "l9")], neutral_links={"l8", "l9"},
            non_neutral_links={"l1"},
        )
        assert rate == 1.0

    def test_granularity(self):
        assert granularity([("l1",), ("l1", "l2")]) == pytest.approx(1.5)
        assert math.isnan(granularity([]))

    def test_evaluate_collects_link_sets(self):
        fig = figure4()
        result = identify_non_neutral_exact(fig.performance)
        report = evaluate(result, {"l1", "l2"}, fig.network.link_ids)
        assert report.missed_links == frozenset()
        assert report.false_positive_links == frozenset()
