"""Edge-case tests for Algorithm 1's flags and bookkeeping."""

import pytest

from repro.core.algorithm import (
    identify_non_neutral,
    identify_non_neutral_exact,
)
from repro.core.observability import check_structural_observability
from repro.topology.figures import figure4


def test_prune_disabled_keeps_raw(monkeypatch):
    fig = figure4()
    pruned = identify_non_neutral_exact(fig.performance)
    raw = identify_non_neutral_exact(
        fig.performance, prune_redundant=False
    )
    assert set(raw.identified) == set(raw.identified_raw)
    assert set(pruned.identified) <= set(raw.identified)


def test_min_pathsets_threshold_gates_candidates():
    fig = figure4()
    strict = identify_non_neutral_exact(
        fig.performance, min_pathsets=100
    )
    assert strict.identified == ()
    assert strict.systems == {}
    assert len(strict.skipped) > 0


def test_identified_links_property():
    fig = figure4()
    result = identify_non_neutral_exact(fig.performance)
    assert result.identified_links == {"l1", "l2"}


def test_scores_populated_for_all_examined():
    fig = figure4()
    result = identify_non_neutral_exact(fig.performance)
    assert set(result.scores) == set(result.systems)
    assert all(v >= 0 for v in result.scores.values())


def test_structural_observability_top_class_override():
    fig = figure4()
    default = check_structural_observability(
        fig.network, fig.classes, ["l1"]
    )
    flipped = check_structural_observability(
        fig.network, fig.classes, ["l1"], top_class={"l1": "c2"}
    )
    # With c2 as the top class, the regulation link targets c1 =
    # {p1}; Paths(l1) ∩ {p1} = {p1} = Paths(l3) — masked by p1's
    # private link, so a violation *favoring* the big class would be
    # unobservable. Direction of differentiation matters.
    assert default.observable
    assert not flipped.observable
    assert any(mask == "l3" for _, mask in flipped.masked)


def test_observation_driven_missing_pathset_raises():
    from repro.exceptions import SliceError

    fig = figure4()
    with pytest.raises((KeyError, SliceError)):
        identify_non_neutral(fig.network, {})
