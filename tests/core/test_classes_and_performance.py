"""Unit tests for performance classes and performance numbers."""

import math

import pytest

from repro.core.classes import (
    ClassAssignment,
    PerformanceClass,
    classes_from_mapping,
    single_class,
    two_classes,
)
from repro.core.network import network_from_path_specs
from repro.core.performance import (
    LinkPerformance,
    NetworkPerformance,
    neutral_performance,
    perf_from_probability,
    performance_with_violations,
    probability_from_perf,
)
from repro.exceptions import ClassAssignmentError, PerformanceError


@pytest.fixture
def net():
    return network_from_path_specs(
        {"p1": ["l1", "l2"], "p2": ["l1", "l3"], "p3": ["l3", "l4"]}
    )


class TestClassAssignment:
    def test_partition_enforced_overlap(self, net):
        with pytest.raises(ClassAssignmentError):
            ClassAssignment(
                [
                    PerformanceClass("a", frozenset({"p1", "p2"})),
                    PerformanceClass("b", frozenset({"p2", "p3"})),
                ],
                net,
            )

    def test_partition_enforced_coverage(self, net):
        with pytest.raises(ClassAssignmentError):
            ClassAssignment(
                [PerformanceClass("a", frozenset({"p1"}))], net
            )

    def test_unknown_path_rejected(self, net):
        with pytest.raises(ClassAssignmentError):
            ClassAssignment(
                [
                    PerformanceClass(
                        "a", frozenset({"p1", "p2", "p3", "p9"})
                    )
                ],
                net,
            )

    def test_empty_class_rejected(self, net):
        with pytest.raises(ClassAssignmentError):
            ClassAssignment(
                [
                    PerformanceClass("a", frozenset()),
                    PerformanceClass(
                        "b", frozenset({"p1", "p2", "p3"})
                    ),
                ],
                net,
            )

    def test_duplicate_names_rejected(self, net):
        with pytest.raises(ClassAssignmentError):
            ClassAssignment(
                [
                    PerformanceClass("a", frozenset({"p1"})),
                    PerformanceClass("a", frozenset({"p2", "p3"})),
                ],
                net,
            )

    def test_class_of(self, net):
        classes = two_classes(net, ["p2"])
        assert classes.class_of("p2") == "c2"
        assert classes.class_of("p1") == "c1"

    def test_pathset_class(self, net):
        classes = two_classes(net, ["p2", "p3"])
        assert classes.pathset_class(["p2", "p3"]) == "c2"
        assert classes.pathset_class(["p1", "p2"]) == ""

    def test_single_class(self, net):
        classes = single_class(net)
        assert classes.is_single_class()
        assert len(classes) == 1

    def test_two_classes_rejects_all_paths(self, net):
        with pytest.raises(ClassAssignmentError):
            two_classes(net, ["p1", "p2", "p3"])

    def test_from_mapping(self, net):
        classes = classes_from_mapping(
            net, {"p1": "x", "p2": "y", "p3": "x"}
        )
        assert classes.by_name("x").paths == {"p1", "p3"}

    def test_iteration(self, net):
        classes = two_classes(net, ["p2"])
        assert [c.name for c in classes] == ["c1", "c2"]


class TestLinkPerformance:
    def test_neutral_detection(self):
        lp = LinkPerformance.neutral(0.3, ["c1", "c2"])
        assert lp.is_neutral
        assert lp.neutral_value == pytest.approx(0.3)

    def test_non_neutral(self):
        lp = LinkPerformance.non_neutral({"c1": 0.1, "c2": 0.5})
        assert not lp.is_neutral
        assert lp.top_priority_class == "c1"
        assert lp.for_class("c2") == pytest.approx(0.5)

    def test_top_priority_is_lowest_cost(self):
        lp = LinkPerformance.non_neutral({"c1": 0.9, "c2": 0.2})
        assert lp.top_priority_class == "c2"

    def test_negative_cost_rejected(self):
        with pytest.raises(PerformanceError):
            LinkPerformance.non_neutral({"c1": -0.1})

    def test_unknown_class_query(self):
        lp = LinkPerformance.neutral(0.0, ["c1"])
        with pytest.raises(PerformanceError):
            lp.for_class("c9")

    def test_neutral_value_on_non_neutral(self):
        lp = LinkPerformance.non_neutral({"c1": 0.1, "c2": 0.2})
        with pytest.raises(PerformanceError):
            _ = lp.neutral_value


class TestProbabilityConversion:
    def test_round_trip(self):
        for p in (1.0, 0.5, 0.123):
            assert probability_from_perf(
                perf_from_probability(p)
            ) == pytest.approx(p)

    def test_zero_probability_rejected(self):
        with pytest.raises(PerformanceError):
            perf_from_probability(0.0)

    def test_negative_perf_rejected(self):
        with pytest.raises(PerformanceError):
            probability_from_perf(-1.0)


class TestNetworkPerformance:
    def test_neutral_network(self, net):
        classes = two_classes(net, ["p2"])
        perf = neutral_performance(
            net, classes, {"l1": 0.1, "l3": 0.2}
        )
        assert perf.is_network_neutral
        assert perf.neutral_links == set(net.link_ids)

    def test_violations(self, net):
        classes = two_classes(net, ["p2"])
        perf = performance_with_violations(
            net, classes, {}, {"l1": {"c1": 0.1, "c2": 0.5}}
        )
        assert perf.non_neutral_links == {"l1"}
        assert not perf.is_network_neutral

    def test_missing_link_rejected(self, net):
        classes = two_classes(net, ["p2"])
        with pytest.raises(PerformanceError):
            NetworkPerformance(
                net,
                classes,
                {"l1": LinkPerformance.neutral(0.0, classes.names)},
            )

    def test_class_mismatch_rejected(self, net):
        classes = two_classes(net, ["p2"])
        perf_map = {
            lid: LinkPerformance.neutral(0.0, ["c1"])  # missing c2
            for lid in net.link_ids
        }
        with pytest.raises(PerformanceError):
            NetworkPerformance(net, classes, perf_map)

    def test_path_performance_uses_path_class(self, net):
        classes = two_classes(net, ["p2"])
        perf = performance_with_violations(
            net,
            classes,
            {"l3": 0.1},
            {"l1": {"c1": 0.2, "c2": 0.7}},
        )
        # p1 in c1: l1 gives 0.2, l2 gives 0.
        assert perf.path_performance("p1") == pytest.approx(0.2)
        # p2 in c2: l1 gives 0.7, l3 gives 0.1.
        assert perf.path_performance("p2") == pytest.approx(0.8)

    def test_sequence_performance_equation1(self, net):
        classes = two_classes(net, ["p2"])
        perf = neutral_performance(net, classes, {"l1": 0.1, "l2": 0.3})
        assert perf.sequence_performance(
            ["l1", "l2"], "c1"
        ) == pytest.approx(0.4)

    def test_pathset_performance_neutral_equation2(self, net):
        classes = two_classes(net, ["p2"])
        perf = neutral_performance(
            net, classes, {"l1": 0.1, "l2": 0.2, "l3": 0.3, "l4": 0.4}
        )
        # {p1,p2} touches l1,l2,l3.
        assert perf.pathset_performance(
            frozenset({"p1", "p2"})
        ) == pytest.approx(0.6)
