"""Tests for the equivalent neutral network and Theorem 1."""

import numpy as np
import pytest

from repro.core.equivalent import (
    VirtualLinkKind,
    build_equivalent,
    structural_equivalent,
)
from repro.core.observability import (
    check_observability,
    check_structural_observability,
    find_unsolvable_family,
    minimal_unsolvable_family,
)
from repro.core.pathsets import power_family, singletons_and_pairs
from repro.topology.figures import figure1, figure2, figure4, figure5


class TestEquivalentConstruction:
    def test_figure3_structure(self):
        """Fig 1's equivalent: l1 -> l1+(c1), l1+(c2); others neutral."""
        fig = figure1()
        eq = build_equivalent(fig.performance)
        by_origin = eq.links_for_origin("l1")
        kinds = sorted(vl.kind for vl in by_origin)
        assert kinds == [VirtualLinkKind.COMMON, VirtualLinkKind.REGULATION]
        common = next(
            vl for vl in by_origin if vl.kind == VirtualLinkKind.COMMON
        )
        regulation = next(
            vl for vl in by_origin if vl.kind == VirtualLinkKind.REGULATION
        )
        # Common queue traversed by Paths(l1) = {p1, p2}.
        assert common.paths == {"p1", "p2"}
        # Regulation link traversed by Paths(l1) ∩ c2 = {p2}.
        assert regulation.paths == {"p2"}
        assert regulation.cost == pytest.approx(0.40 - 0.05)

    def test_neutral_links_map_to_themselves(self):
        fig = figure1()
        eq = build_equivalent(fig.performance)
        (vl,) = eq.links_for_origin("l3")
        assert vl.kind == VirtualLinkKind.NEUTRAL
        assert vl.cost == pytest.approx(0.03)
        assert vl.paths == {"p2", "p3"}

    def test_equivalence_of_observations(self):
        """G and G+ produce identical observations for every pathset."""
        for fig in (figure1(), figure2(), figure4(), figure5()):
            eq = build_equivalent(fig.performance)
            fam = power_family(fig.network)
            direct = fig.performance.observe(fam)
            via_eq = eq.observe(fam)
            np.testing.assert_allclose(direct, via_eq, atol=1e-12)

    def test_ineffective_regulation_links_flagged(self):
        fig = figure5()  # x1(1)=0; regulation cost positive
        eq = build_equivalent(fig.performance)
        regs = eq.regulation_links()
        assert len(regs) == 1
        assert regs[0].is_effective

    def test_cost_vector_matches_columns(self):
        fig = figure1()
        eq = build_equivalent(fig.performance)
        assert len(eq.cost_vector()) == len(eq.virtual_link_ids)

    def test_structural_equivalent_unit_costs(self):
        fig = figure1()
        eq = structural_equivalent(
            fig.network, fig.classes, ["l1"], {"l1": "c1"}
        )
        regs = eq.regulation_links()
        assert len(regs) == 1
        assert regs[0].cost == 1.0


class TestTheorem1:
    def test_figure1_observable(self):
        assert check_observability(figure1().performance).observable

    def test_figure2_not_observable(self):
        result = check_observability(figure2().performance)
        assert not result.observable
        # The regulation link is masked by l3 (paper's explanation).
        assert result.masked
        masked_by = {mask for _, mask in result.masked}
        assert "l3" in masked_by

    def test_figure4_observable(self):
        assert check_observability(figure4().performance).observable

    def test_figure5_observable(self):
        assert check_observability(figure5().performance).observable

    def test_neutral_network_not_observable(self):
        from repro.core.performance import neutral_performance

        fig = figure1()
        perf = neutral_performance(
            fig.network, fig.classes, {"l1": 0.2}
        )
        assert not check_observability(perf).observable

    def test_structural_matches_concrete(self):
        for fig in (figure1(), figure2(), figure4(), figure5()):
            structural = check_structural_observability(
                fig.network,
                fig.classes,
                fig.non_neutral_links,
                fig.top_class,
            )
            concrete = check_observability(fig.performance)
            assert structural.observable == concrete.observable


class TestBruteForceOracle:
    """Cross-validate Theorem 1 against exhaustive search (Lemma 1)."""

    def test_figure1_witness_exists(self):
        witness = find_unsolvable_family(figure1().performance)
        assert witness is not None
        assert witness.matrix.shape[0] == len(witness.family)

    def test_figure2_no_witness(self):
        assert find_unsolvable_family(figure2().performance) is None

    def test_figure5_needs_pathsets(self):
        """Fig 5's violation is invisible to single-path observations
        but visible once pairs are included (the {p2,p3} clue)."""
        perf = figure5().performance
        net = figure5().network
        from repro.core.linear import is_solvable
        from repro.core.pathsets import singletons
        from repro.core.routing import routing_matrix

        fam1 = singletons(net)
        rm1 = routing_matrix(net, fam1)
        assert is_solvable(rm1.matrix, perf.observe(fam1))

        fam2 = singletons_and_pairs(net)
        rm2 = routing_matrix(net, fam2)
        assert not is_solvable(rm2.matrix, perf.observe(fam2))

    def test_minimal_witness_is_unsolvable_and_minimal(self):
        from repro.core.linear import is_solvable
        from repro.core.routing import routing_matrix

        perf = figure1().performance
        witness = minimal_unsolvable_family(perf)
        assert witness is not None
        assert not is_solvable(witness.matrix, witness.observations)
        # Dropping any single pathset restores solvability.
        net = figure1().network
        for i in range(len(witness.family)):
            fam = witness.family[:i] + witness.family[i + 1 :]
            if not fam:
                continue
            rm = routing_matrix(net, fam)
            assert is_solvable(rm.matrix, perf.observe(fam))
