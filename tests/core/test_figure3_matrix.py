"""Reproduce Figure 3(b): the routing matrix A+ of Figure 1's
neutral equivalent."""

import numpy as np

from repro.core.equivalent import build_equivalent
from repro.core.pathsets import family
from repro.topology.figures import figure1


def test_figure3b_matrix():
    fig = figure1()
    eq = build_equivalent(fig.performance)
    fam = family(
        [
            ["p1"],
            ["p2"],
            ["p3"],
            ["p1", "p2"],
            ["p1", "p3"],
            ["p2", "p3"],
            ["p1", "p2", "p3"],
        ]
    )
    matrix = eq.routing_matrix(fam)
    # Columns sorted by virtual-link id:
    # l1+(c1) [common], l1+(c2) [regulation], l2+, l3+, l4+.
    assert eq.virtual_link_ids == (
        "l1+(c1)", "l1+(c2)", "l2+", "l3+", "l4+",
    )
    expected = np.array(
        [
            [1, 0, 1, 0, 0],  # {p1}
            [1, 1, 0, 1, 0],  # {p2}
            [0, 0, 0, 1, 1],  # {p3}
            [1, 1, 1, 1, 0],  # {p1,p2}
            [1, 0, 1, 1, 1],  # {p1,p3}
            [1, 1, 0, 1, 1],  # {p2,p3}
            [1, 1, 1, 1, 1],  # {p1,p2,p3}
        ],
        dtype=float,
    )
    np.testing.assert_array_equal(matrix, expected)


def test_figure2d_matrix():
    """Figure 2(d): A+ of the non-observable network."""
    from repro.topology.figures import figure2

    fig = figure2()
    eq = build_equivalent(fig.performance)
    fam = family([["p1"], ["p2"]])
    matrix = eq.routing_matrix(fam)
    assert eq.virtual_link_ids == (
        "l1+(c1)", "l1+(c2)", "l2+", "l3+",
    )
    expected = np.array(
        [
            [1, 0, 1, 0],  # {p1}
            [1, 1, 0, 1],  # {p2}
        ],
        dtype=float,
    )
    np.testing.assert_array_equal(matrix, expected)
    # The regulation column equals l3's column — the masking the
    # paper describes ("l1+(2) is indistinguishable from l3").
    np.testing.assert_array_equal(matrix[:, 1], matrix[:, 3])
