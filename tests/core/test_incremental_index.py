"""Incremental path registry: patched caches ≡ cold rebuild.

:meth:`Network.with_paths` / :meth:`Network.without_paths` patch the
cached :class:`PathIndex` and memoized pair groups in place of a full
rebuild (DESIGN.md S20). This suite is the lock on that optimization:
after any add/remove the patched index, pair-group arrays, and slice
batches must be *identical* — not just equivalent — to the ones a
fresh network would build, both on deterministic topologies and under
hypothesis-generated add/remove sequences.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.network import Network, Path
from repro.core.slices import _pair_groups, build_slice_batch
from repro.exceptions import UnknownLinkError, UnknownPathError
from repro.topology.multi_isp import build_federated_multi_isp

_SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_index_equal(patched, rebuilt):
    assert patched.path_ids == rebuilt.path_ids
    assert patched.link_ids == rebuilt.link_ids
    assert patched.path_pos == rebuilt.path_pos
    assert patched.link_pos == rebuilt.link_pos
    np.testing.assert_array_equal(patched.incidence, rebuilt.incidence)
    np.testing.assert_array_equal(patched.packed, rebuilt.packed)


def _assert_groups_equal(patched, rebuilt):
    assert patched.sigmas == rebuilt.sigmas
    np.testing.assert_array_equal(patched.pair_a, rebuilt.pair_a)
    np.testing.assert_array_equal(patched.pair_b, rebuilt.pair_b)
    np.testing.assert_array_equal(patched.offsets, rebuilt.offsets)
    np.testing.assert_array_equal(
        patched.sigma_masks, rebuilt.sigma_masks
    )
    np.testing.assert_array_equal(patched.group_of, rebuilt.group_of)


def _assert_batch_equal(patched, rebuilt):
    assert patched.sigmas == rebuilt.sigmas
    for field in (
        "pair_a", "pair_b", "offsets", "la", "lb",
        "member_rows", "member_offsets", "sigma_masks",
    ):
        np.testing.assert_array_equal(
            getattr(patched, field), getattr(rebuilt, field), field
        )


def _warm(net, min_pathsets=1):
    """Build the caches the patch path is supposed to maintain."""
    _pair_groups(net)
    build_slice_batch(net, min_pathsets)
    return net


def _check_against_rebuild(net, min_pathsets=1):
    """`net` (with patched caches) vs a cold rebuild of the same graph."""
    rebuilt = Network(
        list(net.link_ids), [net.path(pid) for pid in net.path_ids]
    )
    _assert_index_equal(net.path_index, rebuilt.path_index)
    _assert_groups_equal(_pair_groups(net), _pair_groups(rebuilt))
    got, got_skip = build_slice_batch(net, min_pathsets)
    want, want_skip = build_slice_batch(rebuilt, min_pathsets)
    assert got_skip == want_skip
    _assert_batch_equal(got, want)


class TestDeterministic:
    def _net(self):
        return Network(
            ["l0", "l1", "l2", "l3"],
            [
                Path("p0", ("l0", "l1")),
                Path("p1", ("l1", "l2")),
                Path("p2", ("l0", "l2")),
                Path("p3", ("l3",)),
            ],
        )

    def test_add_patches_index(self):
        net = _warm(self._net())
        grown = net.with_paths(
            [Path("p1b", ("l1", "l3")), Path("p0b", ("l0",))]
        )
        # The patch ran: the index object is present without access.
        assert grown._path_index is not None
        _check_against_rebuild(grown)

    def test_remove_patches_index(self):
        net = _warm(self._net())
        shrunk = net.without_paths(["p1", "p3"])
        assert shrunk._path_index is not None
        # Link universe is kept even when a link loses all paths.
        assert shrunk.link_ids == net.link_ids
        _check_against_rebuild(shrunk)

    def test_add_then_remove_round_trip(self):
        net = _warm(self._net())
        grown = net.with_paths([Path("p4", ("l2", "l3"))])
        back = grown.without_paths(["p4"])
        _check_against_rebuild(back)
        _assert_groups_equal(_pair_groups(back), _pair_groups(net))

    def test_cold_network_skips_patching(self):
        net = self._net()  # no caches built
        grown = net.with_paths([Path("p4", ("l2", "l3"))])
        assert grown._path_index is None  # nothing to patch
        _check_against_rebuild(grown)

    def test_add_unknown_link_rejected(self):
        with pytest.raises(UnknownLinkError):
            self._net().with_paths([Path("px", ("ghost",))])

    def test_remove_unknown_path_rejected(self):
        with pytest.raises(UnknownPathError):
            self._net().without_paths(["ghost"])

    def test_federated_vantage_churn(self):
        """A realistic churn on the multi-ISP topology: one vantage
        host's paths leave, two fresh paths join."""
        fed = build_federated_multi_isp(2, 4)
        net = _warm(fed.network, min_pathsets=5)
        leaving = sorted(net.path_ids)[:4]
        shrunk = net.without_paths(leaving)
        _check_against_rebuild(shrunk, min_pathsets=5)
        template = net.path(sorted(net.path_ids)[-1])
        grown = shrunk.with_paths(
            [Path("new0", template.links), Path("new1", template.links[:1])]
        )
        _check_against_rebuild(grown, min_pathsets=5)


@st.composite
def churn_cases(draw):
    num_links = draw(st.integers(3, 7))
    links = [f"l{k}" for k in range(num_links)]
    num_paths = draw(st.integers(3, 6))
    def draw_path(name):
        size = draw(st.integers(1, min(4, num_links)))
        chosen = draw(
            st.permutations(links).map(lambda p: tuple(p[:size]))
        )
        return Path(name, chosen)
    paths = [draw_path(f"p{i}") for i in range(num_paths)]
    added = [
        draw_path(f"a{i}") for i in range(draw(st.integers(1, 3)))
    ]
    removed = draw(
        st.sets(
            st.sampled_from([p.id for p in paths]),
            min_size=1,
            max_size=num_paths - 1,
        )
    )
    return links, paths, added, sorted(removed)


@_SETTINGS
@given(churn_cases())
def test_random_churn_equals_rebuild(case):
    """Any add/remove sequence on a warmed network leaves patched
    caches identical to a cold rebuild at every step."""
    links, paths, added, removed = case
    net = _warm(Network(links, paths))
    grown = net.with_paths(added)
    _check_against_rebuild(grown)
    shrunk = grown.without_paths(removed)
    _check_against_rebuild(shrunk)
    # And patching a patched network (second generation) stays exact.
    again = shrunk.with_paths([Path("z0", tuple(links[:1]))])
    _check_against_rebuild(again)
