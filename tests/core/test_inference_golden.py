"""Golden equivalence: vectorized Algorithm 1/2 vs the frozen seed.

Two layers of locking:

* ``golden/inference_goldens.json`` holds outputs captured from the
  pre-rewrite implementation on the seed topologies (figures,
  star/chain/tree/mesh draws, multi-ISP, plus a sampled-mode case).
  The vectorized pipeline must reproduce identical
  identified/neutral/skipped sets and fp-equal scores/observations.
* The frozen reference module (:mod:`repro.core.algorithm_reference`)
  is run side by side on the same inputs, so equivalence holds even
  for quantities the JSON does not pin (e.g. system structure).
"""

import json

import numpy as np
import pytest

from inference_golden_config import (
    FEDERATED_CASE_NAMES,
    GOLDEN_PATH,
    NORM_SEED,
    REFERENCE_EXEMPT,
    build_cases,
    case_records,
    pathset_key,
    result_to_dict,
)
from repro.core.algorithm import (
    identify_non_neutral_exact,
)
from repro.core.algorithm_reference import (
    identify_non_neutral_exact_reference,
    infer_reference,
)
from repro.core.slices import _pair_groups, build_slice_batch
from repro.experiments.config import EmulationSettings
from repro.experiments.runner import infer_from_measurements

RELTOL = 1e-9

with open(GOLDEN_PATH) as fh:
    GOLDENS = json.load(fh)

CASES = build_cases()
CASE_NAMES = sorted(CASES)
#: The frozen reference is intentionally O(P²) Python; ≥1k-path
#: cases are locked by the goldens and the dense/sparse differential
#: tests instead.
REFERENCE_CASE_NAMES = sorted(set(CASES) - REFERENCE_EXEMPT)


def _close(a, b):
    return abs(a - b) <= RELTOL + RELTOL * abs(b)


def _assert_matches_golden(result_dict, golden_dict):
    for key in ("identified", "identified_raw", "neutral", "skipped"):
        assert result_dict[key] == golden_dict[key], key
    assert set(result_dict["scores"]) == set(golden_dict["scores"])
    for sigma, value in golden_dict["scores"].items():
        assert _close(result_dict["scores"][sigma], value), sigma


@pytest.mark.parametrize("name", CASE_NAMES)
class TestAgainstCapturedGoldens:
    def test_exact_mode(self, name):
        """Exact-mode verdicts and scores match the captured seed
        outputs on every locked topology."""
        net, perf, mp, _mode = CASES[name]
        result = identify_non_neutral_exact(perf, min_pathsets=mp)
        _assert_matches_golden(
            result_to_dict(result), GOLDENS[name]["exact"]
        )

    def test_scored_mode(self, name):
        """The batched records→verdict pipeline reproduces the seed's
        verdicts, scores, and normalized observations."""
        net, perf, mp, mode = CASES[name]
        data = case_records(name, net, perf)
        obs, alg = infer_from_measurements(
            net,
            data,
            settings=EmulationSettings(normalization_mode=mode),
            min_pathsets=mp,
            rng=np.random.default_rng(NORM_SEED),
        )
        golden = GOLDENS[name]["scored"]
        _assert_matches_golden(result_to_dict(alg), golden)
        if "observations" in golden:
            observed = {
                pathset_key(ps): value for ps, value in obs.items()
            }
            assert set(observed) == set(golden["observations"])
            for key, value in golden["observations"].items():
                assert _close(observed[key], value), key


@pytest.mark.parametrize("name", REFERENCE_CASE_NAMES)
class TestAgainstFrozenReference:
    def test_exact_mode_equivalence(self, name):
        """Vectorized vs frozen exact pipeline: same sets, systems,
        and scores."""
        net, perf, mp, _mode = CASES[name]
        vec = identify_non_neutral_exact(perf, min_pathsets=mp)
        ref = identify_non_neutral_exact_reference(perf, min_pathsets=mp)
        assert vec.identified == ref.identified
        assert vec.identified_raw == ref.identified_raw
        assert vec.neutral == ref.neutral
        assert vec.skipped == ref.skipped
        assert set(vec.systems) == set(ref.systems)
        for sigma, ref_system in ref.systems.items():
            system = vec.systems[sigma]
            assert system.paths == ref_system.paths
            assert system.pairs == ref_system.pairs
            assert system.family == ref_system.family
            assert system.columns == ref_system.columns
            np.testing.assert_array_equal(
                system.matrix, ref_system.matrix
            )
        for sigma, value in ref.scores.items():
            assert _close(vec.scores[sigma], value), sigma

    def test_scored_mode_equivalence(self, name):
        """Vectorized vs frozen records→verdict on the same records;
        sampled mode must even consume the identical RNG stream."""
        net, perf, mp, mode = CASES[name]
        data = case_records(name, net, perf)
        ref_obs, ref_alg = infer_reference(
            net,
            data,
            mode=mode,
            rng=np.random.default_rng(NORM_SEED),
            min_pathsets=mp,
        )
        obs, alg = infer_from_measurements(
            net,
            data,
            settings=EmulationSettings(normalization_mode=mode),
            min_pathsets=mp,
            rng=np.random.default_rng(NORM_SEED),
        )
        assert set(alg.identified) == set(ref_alg.identified)
        assert set(alg.neutral) == set(ref_alg.neutral)
        assert set(alg.skipped) == set(ref_alg.skipped)
        assert set(obs) == set(ref_obs)
        for ps, value in ref_obs.items():
            assert _close(obs[ps], value), ps
        for sigma, value in ref_alg.scores.items():
            assert _close(alg.scores[sigma], value), sigma


@pytest.mark.parametrize("name", sorted(FEDERATED_CASE_NAMES))
class TestDenseSparseDifferential:
    """The sparse/bit-packed pair pass vs the dense reference pass.

    Both grouping methods must produce *identical* flat arrays (same
    pairs, same σ order, same packed signatures) and, end to end,
    bitwise-equal scores — on the federated multi-ISP cases where the
    sparse path actually pays off (including the ≥1k-path one the
    frozen Python reference cannot afford)."""

    def test_pair_groups_identical(self, name):
        net, _perf, _mp, _mode = CASES[name]
        dense = _pair_groups(net, method="dense")
        sparse = _pair_groups(net, method="sparse")
        assert dense.sigmas == sparse.sigmas
        np.testing.assert_array_equal(dense.pair_a, sparse.pair_a)
        np.testing.assert_array_equal(dense.pair_b, sparse.pair_b)
        np.testing.assert_array_equal(dense.offsets, sparse.offsets)
        np.testing.assert_array_equal(
            dense.sigma_masks, sparse.sigma_masks
        )
        np.testing.assert_array_equal(
            dense.group_of, sparse.group_of
        )

    def test_slice_batch_identical(self, name):
        net, _perf, mp, _mode = CASES[name]
        dense, skipped_d = build_slice_batch(net, mp, method="dense")
        sparse, skipped_s = build_slice_batch(net, mp, method="sparse")
        assert skipped_d == skipped_s
        assert dense.sigmas == sparse.sigmas
        for field in (
            "pair_a", "pair_b", "offsets", "la", "lb",
            "member_rows", "member_offsets", "sigma_masks",
        ):
            np.testing.assert_array_equal(
                getattr(dense, field), getattr(sparse, field), field
            )

    def test_verdicts_identical(self, name):
        net, perf, mp, mode = CASES[name]
        data = case_records(name, net, perf)
        results = []
        for method in ("dense", "sparse"):
            batch, skipped = build_slice_batch(net, mp, method=method)
            from repro.measurement.normalize import (
                batch_slice_observations,
            )
            from repro.core.slices import batch_unsolvability_arrays
            _, y_single, y_pair = batch_slice_observations(
                data, batch, mode=mode, materialize=False
            )
            scores = batch_unsolvability_arrays(batch, y_single, y_pair)
            results.append((batch.sigmas, tuple(skipped), scores))
        (sig_d, skip_d, sc_d), (sig_s, skip_s, sc_s) = results
        assert sig_d == sig_s
        assert skip_d == skip_s
        np.testing.assert_array_equal(sc_d, sc_s)
