"""Property-based equivalence and invariance of the batched inference.

Hypothesis drives random networks through both the vectorized and the
frozen-reference implementations, plus the relabeling invariances the
indexed rewrite must preserve: the algebra only sees *which* paths
share *which* links, so renaming paths (or links, for the redundancy
pruning) must permute the output, never change it.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.algorithm import remove_redundant
from repro.core.algorithm_reference import (
    pair_estimates_reference,
    remove_redundant_reference,
    shared_sequences_reference,
    two_means_split_reference,
    unsolvability_reference,
)
from repro.core.network import Network, Path
from repro.core.slices import (
    batch_unsolvability,
    build_slice_batch,
    shared_sequences,
)
from repro.measurement.clustering import two_means_split

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_networks(draw):
    num_links = draw(st.integers(3, 8))
    links = [f"l{k}" for k in range(num_links)]
    num_paths = draw(st.integers(3, 7))
    paths = []
    for i in range(num_paths):
        size = draw(st.integers(1, min(4, num_links)))
        chosen = draw(
            st.permutations(links).map(lambda p: tuple(p[:size]))
        )
        paths.append(Path(f"p{i}", chosen))
    return Network(links, paths)


@_SETTINGS
@given(random_networks())
def test_shared_sequences_matches_reference(net):
    """Batched grouping == per-pair frozenset grouping, bucket by
    bucket and pair by pair."""
    assert shared_sequences(net) == shared_sequences_reference(net)


@_SETTINGS
@given(random_networks(), st.randoms(use_true_random=False))
def test_shared_sequences_path_relabeling_invariance(net, pyrandom):
    """Renaming paths permutes bucket contents, nothing else."""
    ids = list(net.paths)
    renamed = ids[:]
    pyrandom.shuffle(renamed)
    rename = dict(zip(ids, renamed))
    relabeled = Network(
        list(net.links.values()),
        [Path(rename[p.id], p.links) for p in net.paths.values()],
    )
    base = shared_sequences(net)
    mapped = shared_sequences(relabeled)
    assert set(base) == set(mapped)
    for sigma, pairs in base.items():
        expected = {
            frozenset((rename[a], rename[b])) for a, b in pairs
        }
        assert {frozenset(pair) for pair in mapped[sigma]} == expected


@_SETTINGS
@given(random_networks(), st.integers(0, 2**31 - 1))
def test_batch_scores_match_per_system_scores(net, seed):
    """The flat-gather scores equal every system's own
    ``unsolvability`` (and the frozen reference's), given random
    observations."""
    rng = np.random.default_rng(seed)
    batch, _ = build_slice_batch(net, min_pathsets=3)
    observations = {}
    for system in batch.systems:
        for ps in system.family:
            if ps not in observations:
                observations[ps] = float(rng.uniform(0.0, 1.0))
    scores = batch_unsolvability(batch, observations)
    assert scores.shape == (len(batch.sigmas),)
    for sigma, system, score in zip(batch.sigmas, batch.systems, scores):
        assert score == system.unsolvability(observations)
        assert score == unsolvability_reference(system, observations)
        assert system.pair_estimates(observations) == (
            pair_estimates_reference(system, observations)
        )


@st.composite
def sequence_families(draw):
    """A pool of link sequences over a small universe, split into
    examined ⊇ identified."""
    universe = [f"l{k}" for k in range(draw(st.integers(3, 7)))]
    num_seqs = draw(st.integers(1, 8))
    examined = []
    seen = set()
    for _ in range(num_seqs):
        size = draw(st.integers(1, len(universe)))
        seq = tuple(
            sorted(
                draw(
                    st.permutations(universe).map(
                        lambda p: tuple(p[:size])
                    )
                )
            )
        )
        if seq not in seen:
            seen.add(seq)
            examined.append(seq)
    flags = [draw(st.booleans()) for _ in examined]
    if not any(flags):
        flags[0] = True
    identified = [s for s, flag in zip(examined, flags) if flag]
    return identified, examined


@_SETTINGS
@given(sequence_families())
def test_remove_redundant_matches_reference(pool):
    identified, examined = pool
    assert remove_redundant(identified, examined) == (
        remove_redundant_reference(identified, examined)
    )


@_SETTINGS
@given(sequence_families(), st.randoms(use_true_random=False))
def test_remove_redundant_link_relabeling_invariance(pool, pyrandom):
    """Renaming links maps the pruned set through the same renaming."""
    identified, examined = pool
    universe = sorted({lid for seq in examined for lid in seq})
    renamed = [f"x{k}" for k in range(len(universe))]
    pyrandom.shuffle(renamed)
    rename = dict(zip(universe, renamed))

    def map_seq(seq):
        return tuple(sorted(rename[lid] for lid in seq))

    base = remove_redundant(identified, examined)
    mapped = remove_redundant(
        [map_seq(s) for s in identified], [map_seq(s) for s in examined]
    )
    assert sorted(mapped) == sorted(map_seq(s) for s in base)


@_SETTINGS
@given(
    st.lists(
        st.floats(
            min_value=0.0,
            max_value=10.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=40,
    )
)
def test_two_means_split_matches_reference(values):
    """The argmin'd prefix-sum split equals the frozen sequential
    search on arbitrary score lists."""
    vec = two_means_split(values)
    ref = two_means_split_reference(values)
    assert vec.separated == ref.separated
    assert vec.threshold == ref.threshold
    assert vec.low_center == ref.low_center
    assert vec.high_center == ref.high_center
