"""Unit tests for the network model (repro.core.network)."""

import pytest

from repro.core.network import (
    Link,
    Network,
    Node,
    NodeKind,
    Path,
    make_linkseq,
    network_from_path_specs,
)
from repro.exceptions import (
    InvalidPathError,
    ModelError,
    UnknownLinkError,
    UnknownPathError,
)


@pytest.fixture
def fig1_net():
    return network_from_path_specs(
        {"p1": ["l1", "l2"], "p2": ["l1", "l3"], "p3": ["l3", "l4"]}
    )


class TestConstruction:
    def test_links_from_strings(self, fig1_net):
        assert fig1_net.link_ids == ("l1", "l2", "l3", "l4")

    def test_path_ids_sorted(self, fig1_net):
        assert fig1_net.path_ids == ("p1", "p2", "p3")

    def test_duplicate_link_rejected(self):
        with pytest.raises(ModelError):
            Network(["l1", "l1"], [Path("p1", ("l1",))])

    def test_duplicate_path_rejected(self):
        with pytest.raises(ModelError):
            Network(["l1"], [Path("p1", ("l1",)), Path("p1", ("l1",))])

    def test_path_with_unknown_link_rejected(self):
        with pytest.raises(UnknownLinkError):
            Network(["l1"], [Path("p1", ("l1", "l9"))])

    def test_empty_path_rejected(self):
        with pytest.raises(InvalidPathError):
            Path("p1", ())

    def test_looping_path_rejected(self):
        with pytest.raises(InvalidPathError):
            Path("p1", ("l1", "l2", "l1"))

    def test_nodes_synthesized_from_link_endpoints(self):
        net = Network(
            [Link("l1", "a", "b")], [Path("p1", ("l1",))]
        )
        assert set(net.nodes) == {"a", "b"}
        assert not net.node("a").is_host

    def test_invalid_node_kind_rejected(self):
        with pytest.raises(ModelError):
            Node("x", "router")

    def test_host_node(self):
        assert Node("h", NodeKind.HOST).is_host


class TestHelpers:
    def test_paths_through(self, fig1_net):
        assert fig1_net.paths_through("l1") == {"p1", "p2"}
        assert fig1_net.paths_through("l3") == {"p2", "p3"}
        assert fig1_net.paths_through("l2") == {"p1"}

    def test_paths_through_unknown_link(self, fig1_net):
        with pytest.raises(UnknownLinkError):
            fig1_net.paths_through("l99")

    def test_paths_through_all(self, fig1_net):
        assert fig1_net.paths_through_all(["l1", "l3"]) == {"p2"}
        assert fig1_net.paths_through_all([]) == {"p1", "p2", "p3"}

    def test_links_of(self, fig1_net):
        assert fig1_net.links_of("p2") == {"l1", "l3"}

    def test_links_of_unknown_path(self, fig1_net):
        with pytest.raises(UnknownPathError):
            fig1_net.links_of("p99")

    def test_links_of_pathset(self, fig1_net):
        assert fig1_net.links_of_pathset({"p1", "p3"}) == {
            "l1", "l2", "l3", "l4",
        }

    def test_shared_links(self, fig1_net):
        assert fig1_net.shared_links("p1", "p2") == ("l1",)
        assert fig1_net.shared_links("p2", "p3") == ("l3",)
        assert fig1_net.shared_links("p1", "p3") == ()

    def test_distinguishable(self, fig1_net):
        assert fig1_net.distinguishable("l1", "l2")
        # l2 is traversed only by p1, l4 only by p3: distinguishable.
        assert fig1_net.distinguishable("l2", "l4")

    def test_indistinguishable_links(self):
        net = network_from_path_specs({"p1": ["l1", "l2"]})
        assert not net.distinguishable("l1", "l2")

    def test_path_pairs_count(self, fig1_net):
        assert len(list(fig1_net.path_pairs())) == 3

    def test_unused_links(self):
        net = Network(["l1", "l2"], [Path("p1", ("l1",))])
        assert net.unused_links() == {"l2"}

    def test_contains_and_len(self, fig1_net):
        assert "l1" in fig1_net
        assert "l9" not in fig1_net
        assert len(fig1_net) == 4


class TestRestriction:
    def test_restricted_to_paths(self, fig1_net):
        sub = fig1_net.restricted_to_paths(["p1"])
        assert sub.path_ids == ("p1",)
        assert sub.link_ids == ("l1", "l2")

    def test_restricted_unknown_path(self, fig1_net):
        with pytest.raises(UnknownPathError):
            fig1_net.restricted_to_paths(["p9"])


class TestLinkSeq:
    def test_make_linkseq_sorts_and_dedups(self):
        assert make_linkseq(["l3", "l1", "l3"]) == ("l1", "l3")

    def test_make_linkseq_empty(self):
        assert make_linkseq([]) == ()
