"""Pickle/copy staleness: derived caches never survive restoration.

Regression suite for the ``Network.__getstate__`` staleness hole: a
:class:`PathIndex` (or any memoized pair grouping keyed on one) that
rides through pickling can silently desynchronize every downstream
artifact. Two independent defenses are locked here:

* ``__getstate__`` drops the caches and ``__setstate__`` hard-resets
  them even when handed a state dict that *does* carry stale entries
  (older pickles, copy protocols that bypass ``__getstate__``).
* The consumers in :mod:`repro.core.slices` validate
  ``cached.index is net.path_index`` before serving a memoized
  structure, so even a cache planted after restoration is rebuilt
  rather than trusted.
"""

import copy
import pickle

import numpy as np

from repro.core.network import Network, Path
from repro.core.slices import (
    _pair_groups,
    _singleton_pathsets,
    build_slice_batch,
)


def _net():
    return Network(
        ["l0", "l1", "l2"],
        [
            Path("p0", ("l0", "l1")),
            Path("p1", ("l1", "l2")),
            Path("p2", ("l0", "l2")),
        ],
    )


def _warm(net):
    net.path_index
    _pair_groups(net)
    build_slice_batch(net, 1)
    return net


class TestStateProtocol:
    def test_getstate_drops_caches(self):
        net = _warm(_net())
        state = net.__getstate__()
        assert state["_path_index"] is None
        assert state["_inference_cache"] == {}

    def test_pickle_round_trip_resets_caches(self):
        net = _warm(_net())
        clone = pickle.loads(pickle.dumps(net))
        assert clone._path_index is None
        assert clone._inference_cache == {}
        # And the rebuilt index matches the original's.
        np.testing.assert_array_equal(
            clone.path_index.incidence, net.path_index.incidence
        )

    def test_setstate_resets_even_stale_state(self):
        """The hole: a state dict carrying live cache objects (as an
        older pickle would) must not be trusted on restore."""
        donor = _warm(_net())
        stale_state = donor.__dict__.copy()
        assert stale_state["_path_index"] is not None
        assert stale_state["_inference_cache"]
        clone = Network.__new__(Network)
        clone.__setstate__(stale_state)
        assert clone._path_index is None
        assert clone._inference_cache == {}

    def test_deepcopy_resets_caches(self):
        net = _warm(_net())
        clone = copy.deepcopy(net)
        assert clone._path_index is None
        assert clone._inference_cache == {}


class TestConsumerValidation:
    """Second defense: cache entries keyed to a foreign index are
    rebuilt, not served."""

    def test_planted_pair_groups_are_rebuilt(self):
        donor = _warm(_net())
        stale = donor._inference_cache[("pair_groups", "sparse")]
        net = _net()
        net._inference_cache[("pair_groups", "sparse")] = stale
        groups = _pair_groups(net)
        assert groups is not stale
        assert groups.index is net.path_index
        assert groups.sigmas == stale.sigmas  # same graph, same content

    def test_planted_slice_batch_is_rebuilt(self):
        donor = _warm(_net())
        stale = donor._inference_cache[("slice_batch", 1, "sparse")]
        net = _net()
        net._inference_cache[("slice_batch", 1, "sparse")] = stale
        batch, _ = build_slice_batch(net, 1)
        assert batch is not stale[0]
        assert batch.index is net.path_index

    def test_planted_singletons_are_rebuilt(self):
        donor = _warm(_net())
        stale = donor._inference_cache["singleton_pathsets"]
        net = _net()
        net._inference_cache["singleton_pathsets"] = stale
        singles = _singleton_pathsets(net)
        entry = net._inference_cache["singleton_pathsets"]
        assert entry[0] is net.path_index  # re-keyed to the live index
        assert singles == stale[1]  # same graph, same content

    def test_fresh_cache_is_served(self):
        """Sanity: a valid entry (same index object) is reused."""
        net = _warm(_net())
        assert _pair_groups(net) is _pair_groups(net)
        batch, _ = build_slice_batch(net, 1)
        batch2, _ = build_slice_batch(net, 1)
        assert batch is batch2
