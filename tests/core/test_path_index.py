"""Unit tests for the PathIndex registry and the slice batch."""

import numpy as np
import pytest

from repro.core.network import Network, Path, network_from_path_specs
from repro.core.slices import (
    SliceSystemBatch,
    batch_pair_estimates,
    build_slice_batch,
)
from repro.exceptions import SliceError, UnknownLinkError, UnknownPathError
from repro.topology.figures import figure4


@pytest.fixture
def net():
    return network_from_path_specs(
        {
            "p1": ["l1", "l2"],
            "p2": ["l1", "l3"],
            "p3": ["l3", "l4"],
        }
    )


class TestPathIndex:
    def test_incidence_matches_links(self, net):
        index = net.path_index
        assert index.path_ids == ("p1", "p2", "p3")
        assert index.link_ids == ("l1", "l2", "l3", "l4")
        for i, pid in enumerate(index.path_ids):
            links = {
                index.link_ids[k]
                for k in np.flatnonzero(index.incidence[i])
            }
            assert links == set(net.links_of(pid))

    def test_incidence_read_only(self, net):
        with pytest.raises(ValueError):
            net.path_index.incidence[0, 0] = True

    def test_cached_instance(self, net):
        assert net.path_index is net.path_index

    def test_rows_and_masks(self, net):
        index = net.path_index
        np.testing.assert_array_equal(
            index.rows(["p3", "p1"]), [2, 0]
        )
        mask = index.link_mask(["l3", "l1"])
        np.testing.assert_array_equal(mask, [True, False, True, False])
        assert index.linkseq_from_mask(mask) == ("l1", "l3")

    def test_unknown_ids_raise(self, net):
        with pytest.raises(UnknownPathError):
            net.path_index.rows(["nope"])
        with pytest.raises(UnknownLinkError):
            net.path_index.link_mask(["nope"])


class TestSliceBatch:
    def test_batch_layout(self):
        net = figure4().network
        batch, skipped = build_slice_batch(net, min_pathsets=5)
        assert isinstance(batch, SliceSystemBatch)
        # Figure 4: ⟨l1⟩ and ⟨l1,l2⟩ are candidates; ⟨l2⟩ alone never
        # appears (every pair through l2 also shares l1).
        assert batch.sigmas == (("l1",), ("l1", "l2"))
        assert skipped == ()
        assert batch.offsets[-1] == batch.pair_a.size == batch.num_pairs
        for s, system in enumerate(batch.systems):
            lo, hi = batch.offsets[s], batch.offsets[s + 1]
            pairs = [
                (
                    batch.index.path_ids[a],
                    batch.index.path_ids[b],
                )
                for a, b in zip(batch.pair_a[lo:hi], batch.pair_b[lo:hi])
            ]
            assert tuple(pairs) == system.pairs
            mlo, mhi = batch.member_offsets[s], batch.member_offsets[s + 1]
            members = tuple(
                batch.index.path_ids[r]
                for r in batch.member_rows[mlo:mhi]
            )
            assert members == system.paths

    def test_batch_is_memoized(self):
        net = figure4().network
        batch1, _ = build_slice_batch(net, min_pathsets=5)
        batch2, _ = build_slice_batch(net, min_pathsets=5)
        assert batch1 is batch2
        batch3, _ = build_slice_batch(net, min_pathsets=3)
        assert batch3 is not batch1

    def test_missing_observation_raises(self):
        net = figure4().network
        batch, _ = build_slice_batch(net, min_pathsets=5)
        with pytest.raises(SliceError):
            batch_pair_estimates(batch, {})

    def test_empty_network_has_no_systems(self):
        net = Network(["l1"], [Path("p1", ("l1",))])
        batch, skipped = build_slice_batch(net, min_pathsets=5)
        assert batch.num_systems == 0
        assert batch.num_pairs == 0
        assert skipped == ()
