"""Unit tests for pathset families."""

from repro.core.pathsets import (
    all_pairs,
    family,
    format_pathset,
    iter_subsets,
    pathset,
    power_family,
    singletons,
    singletons_and_pairs,
)
from repro.core.network import network_from_path_specs


def _net(n=3):
    return network_from_path_specs(
        {f"p{i}": [f"l{i}"] for i in range(1, n + 1)}
    )


def test_pathset_constructor():
    assert pathset("p1", "p2") == frozenset({"p1", "p2"})


def test_family_dedups_preserving_order():
    fam = family([["p1"], ["p2"], ["p1"], []])
    assert fam == (frozenset({"p1"}), frozenset({"p2"}))


def test_singletons():
    assert singletons(_net()) == (
        frozenset({"p1"}), frozenset({"p2"}), frozenset({"p3"}),
    )


def test_all_pairs_count():
    assert len(all_pairs(_net(4))) == 6


def test_singletons_and_pairs():
    fam = singletons_and_pairs(_net())
    assert len(fam) == 3 + 3


def test_power_family_full():
    fam = power_family(_net())
    assert len(fam) == 2**3 - 1


def test_power_family_capped():
    fam = power_family(_net(), max_size=2)
    assert len(fam) == 3 + 3
    assert all(len(ps) <= 2 for ps in fam)


def test_iter_subsets():
    subsets = set(iter_subsets(frozenset({"a", "b", "c"})))
    assert len(subsets) == 6  # all non-empty proper subsets


def test_format_pathset_sorted():
    assert format_pathset(frozenset({"p2", "p1"})) == "{p1,p2}"
