"""Property-based tests (hypothesis) for the core theory invariants.

Random networks, classes, and performance assignments are generated
and the paper's theorems are checked as executable properties:

* Lemma 1 (soundness): a neutral network's System 3 is always
  solvable, for any pathset family.
* G ≡ G+: the equivalent neutral network reproduces every observation.
* Theorem 1 agrees with the brute-force unsolvability oracle.
* Algorithm 1 (exact mode) never reports a purely-neutral sequence.
* Redundancy pruning never uncovers a covered link.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.algorithm import identify_non_neutral_exact
from repro.core.classes import ClassAssignment, PerformanceClass
from repro.core.equivalent import build_equivalent
from repro.core.linear import is_solvable
from repro.core.network import Network, Path
from repro.core.observability import (
    check_observability,
    find_unsolvable_family,
)
from repro.core.pathsets import power_family
from repro.core.performance import LinkPerformance, NetworkPerformance
from repro.core.routing import routing_matrix

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_MAX_LINKS = 6
_MAX_PATHS = 4


@st.composite
def small_networks(draw):
    """Random small networks: 2–6 links, 2–4 loop-free paths."""
    num_links = draw(st.integers(2, _MAX_LINKS))
    links = [f"l{k}" for k in range(1, num_links + 1)]
    num_paths = draw(st.integers(2, _MAX_PATHS))
    paths = []
    for i in range(num_paths):
        size = draw(st.integers(1, min(3, num_links)))
        chosen = draw(
            st.permutations(links).map(lambda p: tuple(p[:size]))
        )
        paths.append(Path(f"p{i + 1}", chosen))
    return Network(links, paths)


@st.composite
def networks_with_classes(draw):
    net = draw(small_networks())
    path_ids = list(net.path_ids)
    # Split paths into 1 or 2 classes.
    if len(path_ids) >= 2 and draw(st.booleans()):
        cut = draw(st.integers(1, len(path_ids) - 1))
        classes = ClassAssignment(
            [
                PerformanceClass("c1", frozenset(path_ids[:cut])),
                PerformanceClass("c2", frozenset(path_ids[cut:])),
            ],
            net,
        )
    else:
        classes = ClassAssignment(
            [PerformanceClass("c1", frozenset(path_ids))], net
        )
    return net, classes


def _costs(draw, n):
    return [
        draw(
            st.floats(
                0.0, 1.0, allow_nan=False, allow_infinity=False, width=32
            )
        )
        for _ in range(n)
    ]


@st.composite
def neutral_performances(draw):
    net, classes = draw(networks_with_classes())
    values = _costs(draw, len(net.link_ids))
    perf = {
        lid: LinkPerformance.neutral(x, classes.names)
        for lid, x in zip(net.link_ids, values)
    }
    return NetworkPerformance(net, classes, perf)


@st.composite
def arbitrary_performances(draw):
    net, classes = draw(networks_with_classes())
    perf = {}
    for lid in net.link_ids:
        if len(classes) == 2 and draw(st.booleans()):
            base = _costs(draw, 1)[0]
            # The extra (regulation) cost is either exactly zero or
            # clearly nonzero: differences near the rank tolerance
            # would make the exact solvability test ill-posed.
            extra = draw(
                st.one_of(
                    st.just(0.0),
                    st.floats(
                        0.01, 1.0, allow_nan=False, allow_infinity=False
                    ),
                )
            )
            perf[lid] = LinkPerformance.non_neutral(
                {"c1": base, "c2": base + extra}
            )
        else:
            perf[lid] = LinkPerformance.neutral(
                _costs(draw, 1)[0], classes.names
            )
    return NetworkPerformance(net, classes, perf)


_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@_SETTINGS
@given(neutral_performances())
def test_lemma1_neutral_systems_always_solvable(perf):
    """Lemma 1: for a neutral network, System 3 over the full power
    family has a solution — the ground-truth costs themselves."""
    net = perf.network
    fam = power_family(net)
    rm = routing_matrix(net, fam)
    y = perf.observe(fam)
    assert is_solvable(rm.matrix, y, tol=1e-7)


@_SETTINGS
@given(arbitrary_performances())
def test_equivalent_network_reproduces_observations(perf):
    """G+ is observationally indistinguishable from G."""
    eq = build_equivalent(perf)
    fam = power_family(perf.network)
    np.testing.assert_allclose(
        perf.observe(fam), eq.observe(fam), atol=1e-9
    )


@_SETTINGS
@given(arbitrary_performances())
def test_theorem1_matches_bruteforce_oracle(perf):
    """Theorem 1's structural condition == existence of an unsolvable
    family (checked exhaustively on the power set)."""
    predicted = check_observability(perf).observable
    witness = find_unsolvable_family(perf, tol=1e-7)
    assert predicted == (witness is not None)


@_SETTINGS
@given(arbitrary_performances())
def test_algorithm_exact_no_false_positives(perf):
    """Every identified sequence contains a non-neutral link."""
    result = identify_non_neutral_exact(perf, tol=1e-7)
    bad = perf.non_neutral_links
    for sigma in result.identified:
        assert set(sigma) & bad, (
            f"purely neutral sequence {sigma} identified"
        )


@_SETTINGS
@given(arbitrary_performances())
def test_pruning_preserves_link_coverage(perf):
    """Redundancy pruning only drops sequences whose links stay
    covered by the remaining output plus examined neutral ones."""
    result = identify_non_neutral_exact(perf, tol=1e-7)
    raw_links = set()
    for sigma in result.identified_raw:
        raw_links.update(sigma)
    kept_links = set()
    for sigma in result.identified + result.neutral:
        kept_links.update(sigma)
    assert raw_links <= kept_links


@_SETTINGS
@given(neutral_performances())
def test_pathset_costs_monotone_in_pathsets(perf):
    """Adding paths to a pathset can only increase its cost (more
    links must be congestion-free jointly)."""
    net = perf.network
    ids = net.path_ids
    small = frozenset(ids[:1])
    large = frozenset(ids)
    assert (
        perf.pathset_performance(large)
        >= perf.pathset_performance(small) - 1e-12
    )
