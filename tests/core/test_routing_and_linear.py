"""Tests for routing matrices and the linear solvability layer."""

import numpy as np
import pytest

from repro.core.linear import (
    is_solvable,
    nullspace_dimension,
    residual,
    solve_least_squares,
)
from repro.core.network import network_from_path_specs
from repro.core.pathsets import family, power_family, singletons
from repro.core.routing import routing_matrix
from repro.exceptions import TheoryError
from repro.topology.figures import figure1


class TestRoutingMatrix:
    def test_figure1b_matrix(self):
        """Reproduce the exact matrix of Figure 1(b)."""
        net = figure1().network
        fam = family(
            [
                ["p1"],
                ["p2"],
                ["p3"],
                ["p1", "p2"],
                ["p1", "p3"],
                ["p2", "p3"],
                ["p1", "p2", "p3"],
            ]
        )
        rm = routing_matrix(net, fam)
        expected = np.array(
            [
                [1, 1, 0, 0],
                [1, 0, 1, 0],
                [0, 0, 1, 1],
                [1, 1, 1, 0],
                [1, 1, 1, 1],
                [1, 0, 1, 1],
                [1, 1, 1, 1],
            ],
            dtype=float,
        )
        assert rm.columns == ("l1", "l2", "l3", "l4")
        np.testing.assert_array_equal(rm.matrix, expected)

    def test_row_and_column_lookup(self):
        net = figure1().network
        fam = singletons(net)
        rm = routing_matrix(net, fam)
        np.testing.assert_array_equal(
            rm.row_for(frozenset({"p2"})), [1, 0, 1, 0]
        )
        np.testing.assert_array_equal(
            rm.column_for("l1"), [1, 1, 0]
        )

    def test_explicit_columns(self):
        net = figure1().network
        rm = routing_matrix(net, singletons(net), columns=["l3", "l1"])
        assert rm.shape == (3, 2)
        np.testing.assert_array_equal(rm.column_for("l1"), [1, 1, 0])

    def test_format_contains_labels(self):
        net = figure1().network
        rm = routing_matrix(net, singletons(net))
        text = rm.format()
        assert "{p1}" in text and "l4" in text

    def test_full_column_rank_of_power_family(self):
        """Lemma 4: distinguishable links => A(P*) has full column rank."""
        net = figure1().network
        rm = routing_matrix(net, power_family(net))
        assert rm.has_full_column_rank()


class TestSolvability:
    def test_consistent_system(self):
        a = np.array([[1.0, 1.0], [1.0, 0.0]])
        x = np.array([2.0, 3.0])
        assert is_solvable(a, a @ x)

    def test_inconsistent_system(self):
        # y1 = x1, y2 = x1 with different values: unsolvable.
        a = np.array([[1.0], [1.0]])
        y = np.array([1.0, 2.0])
        assert not is_solvable(a, y)
        assert residual(a, y) == pytest.approx(np.sqrt(0.5))

    def test_residual_zero_for_solvable(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        y = np.array([1.0, 2.0, 3.0])
        assert residual(a, y) == pytest.approx(0.0, abs=1e-10)

    def test_shape_mismatch(self):
        with pytest.raises(TheoryError):
            is_solvable(np.eye(2), np.ones(3))

    def test_non_matrix_rejected(self):
        with pytest.raises(TheoryError):
            residual(np.ones(3), np.ones(3))

    def test_least_squares_unique(self):
        a = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        x = np.array([0.5, 1.5])
        sol = solve_least_squares(a, a @ x)
        assert sol.unique
        np.testing.assert_allclose(sol.x, x, atol=1e-9)

    def test_least_squares_nonnegative(self):
        a = np.array([[1.0], [1.0]])
        y = np.array([-1.0, -1.0])
        sol = solve_least_squares(a, y, nonnegative=True)
        assert sol.x[0] == pytest.approx(0.0)

    def test_nullspace_dimension(self):
        a = np.array([[1.0, 1.0]])
        assert nullspace_dimension(a) == 1
        assert nullspace_dimension(np.eye(3)) == 0
