"""Property-based tests for slice/System 4 structure on random nets."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.network import Network, Path
from repro.core.slices import (
    SIGMA_COLUMN,
    build_slice_system,
    shared_sequences,
)

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_networks(draw):
    num_links = draw(st.integers(3, 7))
    links = [f"l{k}" for k in range(num_links)]
    num_paths = draw(st.integers(3, 5))
    paths = []
    for i in range(num_paths):
        size = draw(st.integers(1, min(4, num_links)))
        chosen = draw(
            st.permutations(links).map(lambda p: tuple(p[:size]))
        )
        paths.append(Path(f"p{i}", chosen))
    return Network(links, paths)


@_SETTINGS
@given(random_networks())
def test_buckets_partition_sharing_pairs(net):
    """Every path pair with a nonempty intersection lands in exactly
    the bucket of its shared sequence."""
    buckets = shared_sequences(net)
    seen = set()
    for sigma, pairs in buckets.items():
        for pair in pairs:
            assert net.shared_links(*pair) == sigma
            assert pair not in seen
            seen.add(pair)
    expected = {
        (a, b)
        for a, b in net.path_pairs()
        if net.links_of(a) & net.links_of(b)
    }
    assert seen == expected


@_SETTINGS
@given(random_networks())
def test_slice_matrix_structure(net):
    """System 4 matrices: σ column is all-ones; each row's remainder
    columns are exactly the member paths with non-empty remainders;
    σ is shared by every path of the slice."""
    for sigma, pairs in shared_sequences(net).items():
        system = build_slice_system(net, sigma, pairs)
        assert system is not None
        assert system.columns[0] == SIGMA_COLUMN
        np.testing.assert_array_equal(
            system.matrix[:, 0], np.ones(len(system.family))
        )
        sigma_set = set(sigma)
        for pid in system.paths:
            assert sigma_set <= net.links_of(pid)
        for i, ps in enumerate(system.family):
            active = {
                system.columns[j]
                for j in range(1, len(system.columns))
                if system.matrix[i, j] == 1.0
            }
            expected = {
                pid
                for pid in ps
                if net.links_of(pid) - sigma_set
            }
            assert active == expected


@_SETTINGS
@given(random_networks())
def test_pair_estimates_exact_for_neutral(net):
    """On any random network with neutral ground truth, every pair
    estimate equals σ's true cost exactly."""
    from repro.core.classes import single_class
    from repro.core.performance import neutral_performance

    rng = np.random.default_rng(0)
    classes = single_class(net)
    values = {
        lid: float(rng.uniform(0, 0.5)) for lid in net.link_ids
    }
    perf = neutral_performance(net, classes, values)
    for sigma, pairs in shared_sequences(net).items():
        system = build_slice_system(net, sigma, pairs)
        obs = {
            ps: perf.pathset_performance(ps) for ps in system.family
        }
        truth = sum(values[lid] for lid in sigma)
        for est in system.pair_estimates(obs).values():
            assert abs(est - truth) < 1e-9
