"""Tests for network slices, System 4, and identifiability."""

import numpy as np
import pytest

from repro.core.identifiability import (
    identifiable_sequences_exact,
    is_identifiable_exact,
    satisfies_lemma3,
)
from repro.core.slices import (
    SIGMA_COLUMN,
    build_slice_system,
    pairs_for_sequence,
    shared_sequences,
    slice_pathsets,
)
from repro.exceptions import SliceError
from repro.topology.figures import figure1, figure4, figure6


class TestSliceConstruction:
    def test_figure6_slice_for_l1(self):
        """The slice of ⟨l1⟩ in Figure 4/6's network: Φ has the three
        pairs {p1,p4},{p2,p4},{p3,p4} plus four singletons (7 rows,
        matching Figure 6(b))."""
        net = figure4().network
        system = build_slice_system(net, ("l1",))
        assert system is not None
        assert set(system.pairs) == {
            ("p1", "p4"), ("p2", "p4"), ("p3", "p4"),
        }
        assert system.num_pathsets == 7
        # Columns: sigma + one remainder per path (all non-empty).
        assert system.columns[0] == SIGMA_COLUMN
        assert set(system.columns[1:]) == {"p1", "p2", "p3", "p4"}

    def test_figure6_system_rows(self):
        """Each row has the σ column set plus member remainders."""
        net = figure4().network
        system = build_slice_system(net, ("l1",))
        for i, ps in enumerate(system.family):
            row = system.matrix[i]
            assert row[0] == 1.0
            expected_cols = {SIGMA_COLUMN} | set(ps)
            actual_cols = {
                system.columns[j]
                for j in range(len(system.columns))
                if row[j] == 1.0
            }
            assert actual_cols == expected_cols

    def test_l2_has_no_slice(self):
        """No path pair shares exactly ⟨l2⟩ in Figure 4 (every pair
        through l2 also shares l1) — the non-identifiable case."""
        net = figure4().network
        assert build_slice_system(net, ("l2",)) is None
        assert pairs_for_sequence(net, ("l2",)) == []
        assert slice_pathsets(net, ("l2",)) == ()

    def test_empty_sigma_rejected(self):
        with pytest.raises(SliceError):
            build_slice_system(figure4().network, ())

    def test_shared_sequences_buckets(self):
        net = figure1().network
        buckets = shared_sequences(net)
        assert buckets[("l1",)] == [("p1", "p2")]
        assert buckets[("l3",)] == [("p2", "p3")]
        assert ("l2",) not in buckets

    def test_observation_vector_missing_pathset(self):
        net = figure4().network
        system = build_slice_system(net, ("l1",))
        with pytest.raises(SliceError):
            system.observation_vector({})


class TestPairEstimates:
    def test_estimates_cancel_remainders(self):
        """x_σ = y_i + y_j − y_ij recovers σ's cost exactly for
        same-class pairs in a neutral network."""
        fig = figure4()
        from repro.core.performance import neutral_performance

        perf = neutral_performance(
            fig.network,
            fig.classes,
            {"l1": 0.25, "l2": 0.1, "l3": 0.05, "l6": 0.02},
        )
        net = fig.network
        system = build_slice_system(net, ("l1", "l2"))
        obs = {ps: perf.pathset_performance(ps) for ps in system.family}
        estimates = system.pair_estimates(obs)
        for value in estimates.values():
            assert value == pytest.approx(0.35, abs=1e-12)

    def test_unsolvability_zero_for_neutral(self):
        fig = figure4()
        from repro.core.performance import neutral_performance

        perf = neutral_performance(fig.network, fig.classes, {"l1": 0.3})
        system = build_slice_system(fig.network, ("l1",))
        obs = {ps: perf.pathset_performance(ps) for ps in system.family}
        assert system.unsolvability(obs) == pytest.approx(0.0, abs=1e-12)

    def test_unsolvability_positive_for_violation(self):
        fig = figure4()
        system = build_slice_system(fig.network, ("l1",))
        obs = {
            ps: fig.performance.pathset_performance(ps)
            for ps in system.family
        }
        assert system.unsolvability(obs) > 0.1


class TestIdentifiability:
    def test_figure4_l1_identifiable(self):
        assert is_identifiable_exact(figure4().performance, ("l1",))

    def test_figure4_l2_not_identifiable(self):
        assert not is_identifiable_exact(figure4().performance, ("l2",))

    def test_neutral_sigma_not_flagged(self):
        """Lemma 2 contrapositive: a neutral σ's system is solvable."""
        fig = figure6()  # only l1 non-neutral
        for lid in ("l3", "l4", "l5", "l6"):
            assert not is_identifiable_exact(fig.performance, (lid,))

    def test_identifiable_sequences_exact_fig4(self):
        seqs = identifiable_sequences_exact(figure4().performance)
        assert set(seqs) == {("l1",), ("l1", "l2")}

    def test_lemma3_satisfied_for_l1(self):
        fig = figure4()
        result = satisfies_lemma3(
            fig.network, fig.classes, ("l1",), top_class="c1"
        )
        assert result.satisfied
        assert result.lower_class == "c2"
        # Witnesses: a pair entirely in c2 and one not.
        assert all(p in fig.classes.by_name("c2").paths
                   for p in result.inside_pair)
        assert any(p not in fig.classes.by_name("c2").paths
                   for p in result.outside_pair)

    def test_lemma3_unsatisfiable_without_slice(self):
        fig = figure4()
        result = satisfies_lemma3(
            fig.network, fig.classes, ("l2",), top_class="c1"
        )
        assert not result.satisfied

    def test_lemma3_implies_identifiable(self):
        """Lemma 3's condition is sufficient: whenever it holds for a
        truly non-neutral σ, the exact System 4 is unsolvable."""
        fig = figure4()
        result = satisfies_lemma3(
            fig.network, fig.classes, ("l1",), top_class="c1"
        )
        assert result.satisfied
        assert is_identifiable_exact(fig.performance, ("l1",))
