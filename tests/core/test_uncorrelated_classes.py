"""Tests for the §7 extension: type-(b) non-neutral links.

A link that keeps separate queues per class violates assumption #3:
its classes' congestion events are independent, so its neutral
equivalent uses parallel per-class virtual links instead of a common
queue plus regulation links.
"""

import math

import numpy as np
import pytest

from repro.core.equivalent import VirtualLinkKind, build_equivalent
from repro.core.pathsets import power_family
from repro.exceptions import TheoryError
from repro.topology.figures import figure5


@pytest.fixture
def fig():
    return figure5()


class TestTypeBEquivalent:
    def test_parallel_virtual_links(self, fig):
        eq = build_equivalent(fig.performance, uncorrelated_links=["l1"])
        by_origin = eq.links_for_origin("l1")
        assert len(by_origin) == 2
        assert all(
            vl.kind == VirtualLinkKind.REGULATION for vl in by_origin
        )
        by_class = {vl.class_name: vl for vl in by_origin}
        # Each class keeps its full cost and only its own paths.
        assert by_class["c1"].paths == {"p1"}
        assert by_class["c1"].cost == pytest.approx(0.0)
        assert by_class["c2"].paths == {"p2", "p3"}
        assert by_class["c2"].cost == pytest.approx(math.log(2))

    def test_unknown_link_rejected(self, fig):
        with pytest.raises(TheoryError):
            build_equivalent(fig.performance, uncorrelated_links=["l99"])

    def test_neutral_links_unaffected(self, fig):
        eq = build_equivalent(
            fig.performance, uncorrelated_links=["l2"]
        )  # l2 is neutral: flag is a no-op
        (vl,) = eq.links_for_origin("l2")
        assert vl.kind == VirtualLinkKind.NEUTRAL

    def test_observation_difference_only_on_cross_class_pathsets(
        self, fig
    ):
        """Type (a) and type (b) equivalents agree on single-class
        pathsets but differ on cross-class ones: without a common
        queue, a cross-class pathset pays both classes' full costs."""
        type_a = build_equivalent(fig.performance)
        type_b = build_equivalent(
            fig.performance, uncorrelated_links=["l1"]
        )
        same_class = frozenset({"p2", "p3"})
        assert type_a.pathset_performance(
            same_class
        ) == pytest.approx(type_b.pathset_performance(same_class))
        cross = frozenset({"p1", "p2"})
        # Type (a): common queue cost (0) + regulation (log 2).
        # Type (b): c1 cost (0) + c2 cost (log 2) — equal here
        # because x1(1) = 0; make the top class costly to split them.
        from repro.core.performance import (
            LinkPerformance,
            NetworkPerformance,
        )

        perf2 = NetworkPerformance(
            fig.network,
            fig.classes,
            {
                "l1": LinkPerformance.non_neutral(
                    {"c1": 0.2, "c2": 0.5}
                ),
                "l2": LinkPerformance.neutral(0.0, fig.classes.names),
                "l3": LinkPerformance.neutral(0.0, fig.classes.names),
                "l4": LinkPerformance.neutral(0.0, fig.classes.names),
            },
        )
        a = build_equivalent(perf2)
        b = build_equivalent(perf2, uncorrelated_links=["l1"])
        # Type (a): common queue 0.2 shared + extra 0.3 => 0.5.
        assert a.pathset_performance(cross) == pytest.approx(0.5)
        # Type (b): independent queues => 0.2 + 0.5 = 0.7.
        assert b.pathset_performance(cross) == pytest.approx(0.7)

    def test_type_b_violation_still_observable_via_correlation(self, fig):
        """The Figure 5 clue survives queue separation: the pair
        {p2,p3} still reveals l1's class-c2 queue."""
        from repro.core.linear import is_solvable
        from repro.core.routing import routing_matrix

        eq = build_equivalent(fig.performance, uncorrelated_links=["l1"])
        fam = power_family(fig.network)
        rm = routing_matrix(fig.network, fam)
        y = eq.observe(fam)
        assert not is_solvable(rm.matrix, y)
