"""Shared configuration for the packet-substrate golden smoke.

The golden file (``golden/packet_goldens.json``) holds per-path
``(sent, lost)`` totals and congestion probabilities captured from
the batched packet engine on four locked dumbbell configurations —
neutral, policing, AQM, weighted — at a pinned seed, mirroring
``tests/fluid/golden_config.py``. The smoke test re-runs the same
configurations and compares with tolerances, locking the engine's
emulated physics (not its float-exact output, which may shift with
numpy builds) across refactors.

Regenerate (only if the packet model legitimately changes — bump
:data:`repro.emulator.core.PACKET_ENGINE_VERSION` alongside) with::

    PYTHONPATH=src python tests/emulator/golden_packet_config.py
"""

import json
import os

from repro.emulator.core import PacketNetwork
from repro.fluid.params import FlowSlotSpec, PathWorkload
from repro.measurement.normalize import path_congestion_probability
from repro.substrate.scenario import DifferentiationPolicy
from repro.substrate.spec import LinkSpec, to_packet
from repro.topology.dumbbell import SHARED_LINK, build_dumbbell

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "packet_goldens.json"
)

#: The locked configurations.
SCENARIOS = ("neutral", "policing", "aqm", "weighted")

SEED = 7
DURATION = 40.0
WARMUP = 5.0
RATE_FRACTION = 0.3
SLOTS_PER_PATH = 10
CAPACITY_MBPS = 24.0  # 2000 packets/second at the bottleneck


def scenario_inputs(scenario):
    """Build (net, classes, packet link specs, workloads)."""
    topo = build_dumbbell(mechanism=None)
    specs = {
        lid: LinkSpec(capacity_mbps=10 * CAPACITY_MBPS, buffer_seconds=0.2)
        for lid in topo.network.link_ids
    }
    shared = LinkSpec(capacity_mbps=CAPACITY_MBPS, buffer_seconds=0.2)
    if scenario != "neutral":
        mechanism = {"policing": "policing"}.get(scenario, scenario)
        policy = DifferentiationPolicy(
            mechanism=mechanism, rate_fraction=RATE_FRACTION
        )
        shared = policy.apply_to(shared)
    specs[SHARED_LINK] = shared
    workloads = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=10.0, mean_gap_seconds=2.0),)
            * SLOTS_PER_PATH,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }
    return topo, {lid: to_packet(s) for lid, s in specs.items()}, workloads


def summarize(result):
    """Reduce one PacketResult to the golden summary dict."""
    out = {"paths": {}, "l5_class_congestion": {}}
    for pid in sorted(result.measurements.path_ids):
        rec = result.measurements.record(pid)
        out["paths"][pid] = {
            "sent": int(rec.sent.sum()),
            "lost": int(rec.lost.sum()),
            "p_congested": float(
                path_congestion_probability(result.measurements, pid)
            ),
        }
    for cname in ("c1", "c2"):
        out["l5_class_congestion"][cname] = float(
            result.link_congestion_probability(SHARED_LINK, cname)
        )
    return out


def run_scenario(scenario):
    """Run one locked scenario on the packet engine and summarize."""
    topo, specs, workloads = scenario_inputs(scenario)
    sim = PacketNetwork(
        topo.network, topo.classes, specs, workloads=workloads, seed=SEED
    )
    result = sim.run(duration_seconds=DURATION, warmup_seconds=WARMUP)
    return summarize(result)


def capture():
    return {sc: run_scenario(sc) for sc in SCENARIOS}


if __name__ == "__main__":
    goldens = capture()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(goldens, fh, indent=2, sort_keys=True)
    print(f"wrote {GOLDEN_PATH}")
