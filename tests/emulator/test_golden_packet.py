"""Packet-substrate golden smoke: pinned dumbbell regressions.

``golden/packet_goldens.json`` holds per-path ``(sent, lost)``
totals and congestion probabilities captured from the batched packet
engine on four locked dumbbell configurations — neutral, policing,
AQM, weighted — at a pinned seed (mirroring
``tests/fluid/test_golden_equivalence.py``). Tolerances are bands,
not exact equality, so legitimate numerical drift across numpy
builds passes while a regime change in the emulated physics fails:

* per-path congestion probabilities within an absolute band;
* per-path traffic volumes at the same scale;
* the differentiation structure: the targeted class far worse under
  every mechanism, the classes alike when neutral;
* two runs at the same seed are bit-identical (determinism).
"""

import json

import numpy as np
import pytest

from golden_packet_config import GOLDEN_PATH, SCENARIOS, run_scenario

#: Absolute tolerance on congestion probabilities vs the capture.
P_CONGESTED_TOL = 0.12

#: Per-path sent-volume ratio band vs the capture.
SENT_RATIO_BAND = (1 / 2.0, 2.0)


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def current():
    return {sc: run_scenario(sc) for sc in SCENARIOS}


class TestPacketGoldens:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_path_congestion_within_tolerance(
        self, goldens, current, scenario
    ):
        for pid, gold in goldens[scenario]["paths"].items():
            got = current[scenario]["paths"][pid]
            assert got["p_congested"] == pytest.approx(
                gold["p_congested"], abs=P_CONGESTED_TOL
            ), (scenario, pid)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_sent_volumes_at_same_scale(self, goldens, current, scenario):
        lo, hi = SENT_RATIO_BAND
        for pid, gold in goldens[scenario]["paths"].items():
            got = current[scenario]["paths"][pid]
            ratio = got["sent"] / max(gold["sent"], 1)
            assert lo < ratio < hi, (scenario, pid, ratio)

    def test_neutral_classes_balanced(self, current):
        cong = current["neutral"]["l5_class_congestion"]
        assert abs(cong["c1"] - cong["c2"]) < 0.12, cong

    @pytest.mark.parametrize("scenario", [s for s in SCENARIOS if s != "neutral"])
    def test_differentiation_structure(self, current, scenario):
        """Every mechanism leaves the targeted class clearly worse at
        the shared link."""
        cong = current[scenario]["l5_class_congestion"]
        assert cong["c2"] > cong["c1"] + 0.1, (scenario, cong)
        paths = current[scenario]["paths"]
        c1 = np.mean([paths["p1"]["p_congested"], paths["p2"]["p_congested"]])
        c2 = np.mean([paths["p3"]["p_congested"], paths["p4"]["p_congested"]])
        assert c2 > c1, (scenario, c1, c2)

    def test_determinism(self):
        a = run_scenario("policing")
        b = run_scenario("policing")
        assert a == b
