"""Tests for the packet-level DES emulator (small scale)."""

import numpy as np
import pytest

from repro.core.classes import two_classes
from repro.core.network import Network, Path
from repro.emulator import PacketLinkSpec, PacketNetwork
from repro.exceptions import ConfigurationError, EmulationError
from repro.measurement.normalize import path_congestion_probability


def _dumbbell(policer_rate=None):
    """A 2-path dumbbell at packet scale (hundreds of pps)."""
    net = Network(
        ["a1", "a2", "shared", "e1", "e2"],
        [
            Path("p1", ("a1", "shared", "e1")),
            Path("p2", ("a2", "shared", "e2")),
        ],
    )
    classes = two_classes(net, ["p2"])
    fast = PacketLinkSpec(rate_pps=5000.0, queue_packets=500)
    shared = PacketLinkSpec(
        rate_pps=500.0,
        queue_packets=50,
        policer_rate_pps=policer_rate,
        policed_class="c2" if policer_rate else None,
    )
    specs = {
        "a1": fast, "a2": fast, "e1": fast, "e2": fast,
        "shared": shared,
    }
    return net, classes, specs


class TestValidation:
    def test_flow_plan_required(self):
        net, classes, specs = _dumbbell()
        with pytest.raises(ConfigurationError):
            PacketNetwork(net, classes, specs, flow_plan=None)

    def test_unknown_path_rejected(self):
        net, classes, specs = _dumbbell()
        with pytest.raises(ConfigurationError):
            PacketNetwork(net, classes, specs, {"p9": [100]})

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            PacketLinkSpec(rate_pps=0)
        with pytest.raises(ConfigurationError):
            PacketLinkSpec(policer_rate_pps=100.0)  # missing class

    def test_duration_validation(self):
        net, classes, specs = _dumbbell()
        sim = PacketNetwork(net, classes, specs, {"p1": [100]})
        with pytest.raises(EmulationError):
            sim.run(duration_seconds=0)


class TestBehaviour:
    def test_conservation(self):
        net, classes, specs = _dumbbell()
        sim = PacketNetwork(
            net, classes, specs, {"p1": [2000], "p2": [2000]}, seed=1
        )
        data = sim.run(duration_seconds=10.0).measurements
        for pid in ("p1", "p2"):
            rec = data.record(pid)
            assert rec.sent.sum() > 0
            assert (rec.lost <= rec.sent).all()

    def test_throughput_bounded_by_shared_link(self):
        net, classes, specs = _dumbbell()
        sim = PacketNetwork(
            net, classes, specs, {"p1": [100000], "p2": [100000]}, seed=1
        )
        data = sim.run(duration_seconds=10.0).measurements
        total = sum(
            data.record(p).sent.sum() for p in ("p1", "p2")
        )
        # Can't push much more than capacity (500 pps x 10 s) plus
        # queued/lost slack.
        assert total < 500 * 10 * 1.5

    def test_policer_differentiates(self):
        net, classes, specs = _dumbbell(policer_rate=100.0)
        sim = PacketNetwork(
            net, classes, specs, {"p1": [100000], "p2": [100000]}, seed=1
        )
        data = sim.run(duration_seconds=15.0).measurements
        p1 = path_congestion_probability(data, "p1")
        p2 = path_congestion_probability(data, "p2")
        assert p2 > p1

    def test_determinism(self):
        net, classes, specs = _dumbbell()
        runs = []
        for _ in range(2):
            sim = PacketNetwork(
                net, classes, specs, {"p1": [500], "p2": [500]}, seed=3
            )
            runs.append(sim.run(duration_seconds=5.0).measurements)
        np.testing.assert_array_equal(
            runs[0].record("p1").sent, runs[1].record("p1").sent
        )


class TestCrossValidation:
    def test_qualitative_agreement_with_fluid(self):
        """Packet-level policing produces the same qualitative signal
        the fluid emulator (and the paper) rely on: the policed class
        is congested far more often."""
        net, classes, specs = _dumbbell(policer_rate=100.0)
        sim = PacketNetwork(
            net, classes, specs, {"p1": [100000], "p2": [100000]}, seed=5
        )
        data = sim.run(duration_seconds=15.0).measurements
        p1 = path_congestion_probability(data, "p1")
        p2 = path_congestion_probability(data, "p2")
        assert p2 > 2 * p1
