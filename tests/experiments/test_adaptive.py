"""Adaptive frontier refinement: the dense-grid-equivalence suite.

The load-bearing properties (hard requirements of the adaptive
driver's contract):

* the adaptive frontier equals the dense grid's frontier on every
  refined cell — refinement is an optimization, never an
  approximation;
* results are bit-interchangeable with dense sweeps (shared cache
  digests, both directions);
* the refinement trajectory is invariant to worker count, batch
  width, and cache state (the budget counts cache hits);
* budget exhaustion is loud: a partial frontier is reported with the
  dropped cells, never silently truncated.
"""

import pickle
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Tuple

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.experiments.adaptive import (
    AdaptiveSweep,
    Cell,
    DetectionDelayContour,
    GridAxis,
    PlanePointFactory,
    ScoreBands,
    VerdictFlip,
    _pow2_divisor,
    cell_bounds,
    calibrate_fluid_to_packet,
    plane_axes,
    plane_refinable,
    run_plane_batch,
    run_plane_frontier,
)
from repro.experiments.config import EmulationSettings
from repro.experiments.sweep import SweepPoint, SweepRunner

#: Synthetic x lattice: 17 values, a 16-step span (2^4-refinable).
X_VALUES = tuple(float(i) for i in range(17))


# --- synthetic step field (module-level, pool-picklable) -------------

def _step_point(x, y, thresholds, seed):
    """Per-row step field: 1 right of the row's threshold, else 0."""
    return 1.0 if x >= thresholds[int(y)] else 0.0


def _step_batch(seeds, kwargs_list):
    return [
        _step_point(seed=seed, **kwargs)
        for seed, kwargs in zip(seeds, kwargs_list)
    ]


@dataclass(frozen=True)
class _StepFactory:
    """Synthetic plane factory (frozen so worker pools can pickle the
    points it emits)."""

    thresholds: Tuple[float, ...]
    batch: bool = False

    def __call__(self, values) -> SweepPoint:
        return SweepPoint(
            key=f"synth/x={values['x']:.8g}/y={values['y']:.8g}",
            func=_step_point,
            kwargs={
                "x": values["x"],
                "y": values["y"],
                "thresholds": self.thresholds,
            },
            batch_func=_step_batch if self.batch else None,
            batch_group="synth" if self.batch else None,
        )


def _axes(rows):
    return (
        GridAxis("x", X_VALUES),
        GridAxis(
            "y", tuple(float(r) for r in range(rows)), refine=False
        ),
    )


def _bands():
    return ScoreBands(thresholds=(0.5,), getter=float)


def _sweep(t_indices, runner=None, batch=False, **kwargs):
    """An AdaptiveSweep over the synthetic field whose row ``r`` flips
    at x index ``t_indices[r]`` (0 = all-on row, 17 = all-off row)."""
    thresholds = tuple(t - 0.5 for t in t_indices)
    return AdaptiveSweep(
        runner if runner is not None else SweepRunner(base_seed=5),
        _axes(len(t_indices)),
        _StepFactory(thresholds, batch=batch),
        _bands(),
        **kwargs,
    )


def _dense_frontier(t_indices):
    """Ground truth: the dense grid's disagreeing grid-step cells."""
    return tuple(
        sorted(
            Cell(origin=(t - 1, r), step=(1, 0))
            for r, t in enumerate(t_indices)
            if 1 <= t <= len(X_VALUES) - 1
        )
    )


# --- lattice geometry ------------------------------------------------

class TestCellGeometry:
    def test_pow2_divisor(self):
        assert _pow2_divisor(16) == 16
        assert _pow2_divisor(12) == 4
        assert _pow2_divisor(5) == 1
        assert _pow2_divisor(8) == 8

    def test_scan_axis_cell(self):
        cell = Cell(origin=(0, 2), step=(8, 0))
        assert not cell.terminal
        assert cell.corners() == [(0, 2), (8, 2)]
        assert cell.new_points() == [(4, 2)]
        assert cell.children() == [
            Cell(origin=(0, 2), step=(4, 0)),
            Cell(origin=(4, 2), step=(4, 0)),
        ]

    def test_refined_2d_cell(self):
        cell = Cell(origin=(0, 0), step=(4, 4))
        assert len(cell.corners()) == 4
        # Center + one midpoint per edge = 5 novel sublattice points.
        assert cell.new_points() == [
            (0, 2), (2, 0), (2, 2), (2, 4), (4, 2)
        ]
        assert len(cell.children()) == 4

    def test_terminal_cell_has_no_new_points(self):
        cell = Cell(origin=(3, 1), step=(1, 0))
        assert cell.terminal
        assert cell.new_points() == []
        assert cell.children() == [cell]

    def test_cell_bounds(self):
        axes = _axes(rows=3)
        bounds = cell_bounds(axes, Cell(origin=(2, 1), step=(2, 0)))
        assert bounds["x"] == (2.0, 4.0)
        assert bounds["y"] == (1.0, 1.0)  # scan axes are zero-width


class TestValidation:
    def test_axis_needs_increasing_values(self):
        with pytest.raises(ConfigurationError):
            GridAxis("x", (1.0, 1.0, 2.0))
        with pytest.raises(ConfigurationError):
            GridAxis("x", (2.0, 1.0))

    def test_refined_axis_needs_two_values(self):
        with pytest.raises(ConfigurationError):
            GridAxis("x", (1.0,))
        # A single-value scan axis is fine (a degenerate row).
        GridAxis("y", (1.0,), refine=False)
        with pytest.raises(ConfigurationError):
            GridAxis("y", (), refine=False)

    def test_sweep_needs_axes_and_a_refined_one(self):
        runner = SweepRunner()
        factory = _StepFactory((0.5,))
        with pytest.raises(ConfigurationError):
            AdaptiveSweep(runner, (), factory, _bands())
        with pytest.raises(ConfigurationError):
            AdaptiveSweep(
                runner,
                (GridAxis("y", (1.0, 2.0), refine=False),),
                factory,
                _bands(),
            )
        with pytest.raises(ConfigurationError):
            AdaptiveSweep(
                runner,
                (GridAxis("x", X_VALUES), GridAxis("x", X_VALUES)),
                factory,
                _bands(),
            )

    def test_coarse_step_must_be_pow2_dividing_span(self):
        with pytest.raises(ConfigurationError):
            _sweep((4,), coarse_step=3)  # not a power of two
        with pytest.raises(ConfigurationError):
            _sweep((4,), coarse_step=32)  # does not divide 16
        _sweep((4,), coarse_step=4)  # ok
        _sweep((4,), coarse_step={"x": 2})  # per-axis mapping ok

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            _sweep((4,), budget=0)
        # A budget below the coarse pass fails up front, loudly.
        with pytest.raises(ConfigurationError, match="coarse pass"):
            _sweep((4, 4), budget=3).run()

    def test_score_bands_validation(self):
        with pytest.raises(ConfigurationError):
            ScoreBands(thresholds=())
        with pytest.raises(ConfigurationError):
            ScoreBands(thresholds=(2.0, 1.0), getter=float)
        with pytest.raises(ConfigurationError):
            ScoreBands(thresholds=(1.0,))  # neither attr nor getter
        with pytest.raises(ConfigurationError):
            ScoreBands(
                thresholds=(1.0,), attr="score", getter=float
            )  # both


class TestRefinables:
    def test_verdict_flip_dotted_path(self):
        flip = VerdictFlip("outcome.verdict_non_neutral")
        hit = SimpleNamespace(
            outcome=SimpleNamespace(verdict_non_neutral=True)
        )
        miss = SimpleNamespace(
            outcome=SimpleNamespace(verdict_non_neutral=False)
        )
        assert flip.label("k", hit) == 1
        assert flip.label("k", miss) == 0

    def test_score_bands_banding(self):
        bands = ScoreBands(thresholds=(1.0, 3.0), attr="score")
        assert bands.label("k", SimpleNamespace(score=0.5)) == 0
        assert bands.label("k", SimpleNamespace(score=2.0)) == 1
        assert bands.label("k", SimpleNamespace(score=9.0)) == 2

    def test_detection_delay_contour(self):
        contour = DetectionDelayContour(thresholds=(10, 20))
        never = SimpleNamespace(detection_delay_intervals=None)
        fast = SimpleNamespace(detection_delay_intervals=5)
        mid = SimpleNamespace(detection_delay_intervals=15)
        slow = SimpleNamespace(detection_delay_intervals=25)
        assert contour.label("k", never) == 0
        assert contour.label("k", fast) == 1
        assert contour.label("k", mid) == 2
        assert contour.label("k", slow) == 3


# --- frontier equivalence with the dense grid ------------------------

class TestFrontierEquivalence:
    @hyp_settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=len(X_VALUES)),
            min_size=1,
            max_size=4,
        )
    )
    def test_adaptive_frontier_equals_dense_frontier(self, t_indices):
        """For any per-row step field, the adaptive frontier is
        exactly the dense grid's set of disagreeing grid-step cells,
        and every visited label matches the dense field."""
        result = _sweep(t_indices).run()
        assert result.frontier == _dense_frontier(t_indices)
        assert not result.dropped
        for (ix, iy), label in result.labels.items():
            assert label == int(X_VALUES[ix] >= t_indices[iy] - 0.5)
        assert result.evaluated == len(result.labels)
        assert result.budget_used == result.evaluated
        assert result.evaluated <= result.dense_size

    @hyp_settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=len(X_VALUES) - 1),
            min_size=1,
            max_size=3,
        )
    )
    def test_refinement_beats_dense_when_frontiers_exist(
        self, t_indices
    ):
        """With one crossing per row, bisection visits O(rows·log n)
        points — strictly fewer than the dense grid."""
        result = _sweep(t_indices).run()
        assert len(result.frontier) == len(t_indices)
        assert result.evaluated < result.dense_size

    def test_uniform_field_stops_at_coarse_pass(self):
        result = _sweep((0, 0)).run()  # every label is 1
        assert result.frontier == ()
        assert len(result.waves) == 1
        # 3 coarse x stations (0, 8, 16) per row.
        assert result.evaluated == 6

    def test_frontier_bounds_in_parameter_space(self):
        result = _sweep((4,)).run()
        [bounds] = result.frontier_bounds()
        assert bounds["x"] == (3.0, 4.0)
        assert bounds["y"] == (0.0, 0.0)


class TestDeterminism:
    def _trajectory(self, result):
        return (
            result.labels,
            result.keys,
            result.frontier,
            result.dropped,
            result.budget_used,
            [(w.step, w.points, w.refined_cells) for w in result.waves],
        )

    def test_worker_count_invariance(self):
        """The headline determinism property: the refinement
        trajectory and every result are identical for any worker
        count."""
        seq = _sweep((4, 13), runner=SweepRunner(base_seed=5)).run()
        par = _sweep(
            (4, 13), runner=SweepRunner(base_seed=5, workers=2)
        ).run()
        assert self._trajectory(seq) == self._trajectory(par)
        assert seq.results == par.results

    def test_batch_width_invariance(self):
        """Wave batching must be invisible: batched waves and
        point-at-a-time execution walk the same trajectory."""
        batched = _sweep(
            (4, 13), runner=SweepRunner(base_seed=5), batch=True
        ).run()
        singles = _sweep(
            (4, 13),
            runner=SweepRunner(base_seed=5, batch_size=1),
            batch=True,
        ).run()
        plain = _sweep((4, 13), runner=SweepRunner(base_seed=5)).run()
        assert self._trajectory(batched) == self._trajectory(singles)
        assert self._trajectory(batched) == self._trajectory(plain)
        assert batched.results == singles.results == plain.results

    def test_rerun_reproduces(self):
        a = _sweep((7,)).run()
        b = _sweep((7,)).run()
        assert self._trajectory(a) == self._trajectory(b)
        assert a.results == b.results


# --- budget semantics ------------------------------------------------

class TestBudget:
    def test_exhaustion_is_loud_and_partial(self):
        """Budget 14 covers the 12-point coarse pass plus 2 of the 4
        first-wave refinements: the trailing rows drop as one
        deterministic prefix cut, with a warning and a PARTIAL
        summary."""
        sweep = _sweep((4, 4, 4, 4), budget=14)
        with pytest.warns(RuntimeWarning, match="partial"):
            result = sweep.run()
        assert result.dropped
        assert result.budget_used <= 14
        assert "PARTIAL" in result.summary()
        # The dropped cells are recorded at the resolution they died.
        assert {c.step for c in result.dropped} >= {(8, 0)}

    def test_unbudgeted_run_never_warns_or_drops(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = _sweep((4, 4, 4, 4)).run()
        assert not result.dropped

    def test_budget_counts_cache_hits(self, tmp_path):
        """A warm cache must not let the search wander further than a
        cold one: the trajectory (and budget accounting) is identical
        when every point replays from cache."""
        cache = str(tmp_path / "cache")
        cold = _sweep(
            (4, 13),
            runner=SweepRunner(base_seed=5, cache_dir=cache),
            budget=30,
        ).run()
        warm = _sweep(
            (4, 13),
            runner=SweepRunner(base_seed=5, cache_dir=cache),
            budget=30,
        ).run()
        assert warm.budget_used == cold.budget_used
        assert warm.cache_misses == 0
        assert warm.cache_hits == warm.evaluated
        assert [w.points for w in warm.waves] == [
            w.points for w in cold.waves
        ]
        assert warm.frontier == cold.frontier
        assert warm.results == cold.results


# --- cache interchange with dense sweeps -----------------------------

class TestCacheInterchange:
    def test_adaptive_fills_dense_cache(self, tmp_path):
        """Every adaptively-visited point replays as a cache hit of
        the dense sweep, bit-identical (same digests, same pickles)."""
        cache = str(tmp_path / "cache")
        sweep = _sweep(
            (4, 13), runner=SweepRunner(base_seed=5, cache_dir=cache)
        )
        adaptive = sweep.run()
        dense_runner = SweepRunner(base_seed=5, cache_dir=cache)
        dense = dense_runner.run(sweep.dense_points())
        assert dense_runner.stats.cache_hits == adaptive.evaluated
        assert dense_runner.stats.executed == (
            adaptive.dense_size - adaptive.evaluated
        )
        for key, result in adaptive.results.items():
            assert pickle.dumps(dense[key]) == pickle.dumps(result)

    def test_dense_fills_adaptive_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep = _sweep(
            (4, 13), runner=SweepRunner(base_seed=5, cache_dir=cache)
        )
        dense = SweepRunner(base_seed=5, cache_dir=cache).run(
            sweep.dense_points()
        )
        adaptive = sweep.run()
        assert adaptive.cache_misses == 0
        assert adaptive.cache_hits == adaptive.evaluated
        for key, result in adaptive.results.items():
            assert pickle.dumps(dense[key]) == pickle.dumps(result)


# --- the policing-rate × capacity plane ------------------------------

PLANE_SETTINGS = EmulationSettings(
    duration_seconds=8.0, warmup_seconds=1.0, seed=3
)


class TestPlaneFactory:
    def test_key_is_sorted_and_stable(self):
        factory = PlanePointFactory(settings=PLANE_SETTINGS)
        point = factory(
            {"policing_rate": 0.08, "capacity_mbps": 60.0}
        )
        assert point.key == "plane/capacity_mbps=60/policing_rate=0.08"
        assert point.substrate == "fluid"
        assert point.batch_func is run_plane_batch
        assert point.batch_group == (
            f"plane/fluid/{PLANE_SETTINGS.fingerprint()}"
        )

    def test_packet_substrate_is_batchless(self):
        factory = PlanePointFactory(
            settings=PLANE_SETTINGS, substrate="packet"
        )
        point = factory(
            {"policing_rate": 0.08, "capacity_mbps": 60.0}
        )
        assert point.batch_func is None
        assert point.batch_group is None
        assert point.substrate == "packet"

    def test_fixed_values_reach_key_and_kwargs(self):
        factory = PlanePointFactory(
            settings=PLANE_SETTINGS,
            fixed=(
                ("policing_rate", 0.08),
                ("capacity_mbps", 100.0),
            ),
        )
        point = factory({"burst_seconds": 0.125})
        assert point.key == (
            "plane/burst_seconds=0.125/capacity_mbps=100/"
            "policing_rate=0.08"
        )
        assert point.kwargs["policing_rate"] == 0.08
        assert point.kwargs["burst_seconds"] == 0.125

    def test_plane_axes_shape(self):
        rate_axis, noise_axis = plane_axes(
            rate_points=9, noise_points=3
        )
        assert rate_axis.refine and not noise_axis.refine
        assert len(rate_axis.values) == 9
        assert rate_axis.values[0] == pytest.approx(0.02)
        assert rate_axis.values[-1] == pytest.approx(0.3)
        assert noise_axis.values == (40.0, 80.0, 120.0)
        with pytest.raises(ConfigurationError):
            plane_axes(rate_points=1)


class TestRealPlane:
    """One short real emulation pass: the adaptive plane run agrees
    with the dense grid on every refined cell and interchanges its
    cache with the dense sweep, bit for bit."""

    def test_frontier_matches_dense_and_interchanges(self, tmp_path):
        cache = str(tmp_path / "cache")
        adaptive = run_plane_frontier(
            PLANE_SETTINGS,
            rate_points=9,
            noise_points=2,
            cache_dir=cache,
        )
        assert adaptive.frontier  # the plane has a real boundary
        assert adaptive.evaluated < adaptive.dense_size

        sweep = AdaptiveSweep(
            SweepRunner.for_settings(PLANE_SETTINGS, cache_dir=cache),
            plane_axes(rate_points=9, noise_points=2),
            PlanePointFactory(settings=PLANE_SETTINGS),
            plane_refinable(),
        )
        dense_runner = sweep.runner
        dense = dense_runner.run(sweep.dense_points())
        # Adaptively-visited points replay as dense cache hits...
        assert dense_runner.stats.cache_hits == adaptive.evaluated
        # ...bit-identical to the adaptive results...
        for key, result in adaptive.results.items():
            assert pickle.dumps(dense[key]) == pickle.dumps(result)
        # ...and the dense labels confirm every refined cell: its
        # corners really disagree on the dense grid.
        refinable = plane_refinable()
        for cell in adaptive.frontier:
            labels = {
                refinable.label(
                    sweep.point_at(corner).key,
                    dense[sweep.point_at(corner).key],
                )
                for corner in cell.corners()
            }
            assert len(labels) > 1, cell


class TestCalibration:
    def test_fits_fluid_to_packet_reference(self, tmp_path):
        result = calibrate_fluid_to_packet(
            PLANE_SETTINGS,
            axes=(
                GridAxis(
                    "burst_seconds",
                    tuple(0.02 + 0.07 * i for i in range(5)),
                ),
            ),
            policing_rate=0.08,
            cache_dir=str(tmp_path / "cache"),
        )
        assert result.reference_key.startswith("plane/")
        assert set(result.best_values) == {"burst_seconds"}
        assert result.best_objective == min(
            result.objectives.values()
        )
        assert result.best_objective == pytest.approx(
            abs(
                result.adaptive.results[result.best_key].truth_score
                - result.reference_score
            )
        )
        assert "calibration:" in result.summary()

    def test_packet_reference_digest_differs_from_fluid(self):
        fixed = (
            ("policing_rate", 0.08),
            ("capacity_mbps", 100.0),
        )
        packet = PlanePointFactory(
            settings=PLANE_SETTINGS, substrate="packet", fixed=fixed
        )({})
        fluid = PlanePointFactory(
            settings=PLANE_SETTINGS, substrate="fluid", fixed=fixed
        )({})
        assert packet.key == fluid.key
        assert packet.spec_digest(1, "") != fluid.spec_digest(1, "")


# --- topology-B frontier wiring --------------------------------------

class TestTopologyBFrontier:
    def test_digests_interchange_with_dense_sweep_rep0(self):
        """A frontier visit at rate r keys the cache exactly like
        ``run_topology_b_sweep``'s first repetition at r (batch hooks
        differ, but they are digest-exempt by design)."""
        from repro.experiments.topology_b import (
            run_topology_b_batch,
            run_topology_b_point,
            topology_b_rate_point,
        )

        settings = EmulationSettings(
            duration_seconds=10.0, warmup_seconds=2.0, seed=1
        )
        frontier_point = topology_b_rate_point(settings)(
            {"policing_rate": 0.15}
        )
        dense_point = SweepPoint(
            key="topoB/rate0.15/rep0",
            func=run_topology_b_point,
            kwargs={
                "settings": settings,
                "policing_rate": 0.15,
                "substrate": "fluid",
            },
            substrate="fluid",
            batch_func=run_topology_b_batch,
            batch_group="topoB/rate0.15/fluid/x",
        )
        assert frontier_point.key == dense_point.key
        assert frontier_point.spec_digest(
            7, ""
        ) == dense_point.spec_digest(7, "")

    def test_uniform_verdict_stops_at_endpoints(self, tmp_path):
        """At this scale every valid rate is detected, so the lattice
        is label-uniform: the frontier run must stop after the coarse
        endpoints — and still warm the dense sweep's rep-0 cache."""
        from repro.experiments.topology_b import (
            run_topology_b_frontier,
            run_topology_b_point,
        )

        settings = EmulationSettings(
            duration_seconds=10.0, warmup_seconds=2.0, seed=1
        )
        cache = str(tmp_path / "cache")
        result = run_topology_b_frontier(
            (0.05, 0.15, 0.25, 0.35, 0.45),
            settings=settings,
            cache_dir=cache,
        )
        assert result.evaluated == 2  # endpoints only
        assert result.frontier == ()
        assert sorted(result.keys.values()) == [
            "topoB/rate0.05/rep0",
            "topoB/rate0.45/rep0",
        ]
        assert all(label == 1 for label in result.labels.values())
        # Cache interchange with the repetition sweep, end to end:
        # rep 0 of a dense sweep at a visited rate replays from the
        # frontier run's cache without re-emulating.
        from repro.experiments.topology_b import run_topology_b_batch

        rep0 = SweepPoint(
            key="topoB/rate0.05/rep0",
            func=run_topology_b_point,
            kwargs={
                "settings": settings,
                "policing_rate": 0.05,
                "substrate": "fluid",
            },
            substrate="fluid",
            batch_func=run_topology_b_batch,
            batch_group="topoB/rate0.05/fluid/x",
        )
        runner = SweepRunner.for_settings(settings, cache_dir=cache)
        replayed = runner.run([rep0])
        assert runner.stats.cache_hits == 1
        assert runner.stats.executed == 0
        frontier_report = result.results["topoB/rate0.05/rep0"]
        assert (
            replayed[rep0.key].outcome.algorithm.scores
            == frontier_report.outcome.algorithm.scores
        )


class TestPersistentPool:
    def test_one_pool_across_all_waves(self):
        """Adaptive refinement dispatches many waves; with the
        persistent executor they all ride one warm pool."""
        with SweepRunner(base_seed=5, workers=2) as runner:
            result = _sweep((4, 13), runner=runner).run()
            assert len(result.waves) > 1  # refinement actually waved
            assert runner.executor.pools_created == 1
            assert runner.executor.reuses == len(result.waves) - 1
        # Trajectory unchanged vs the inline runner.
        seq = _sweep((4, 13), runner=SweepRunner(base_seed=5)).run()
        assert result.results == seq.results
        assert result.frontier == seq.frontier

    def test_per_wave_pools_when_reuse_disabled(self):
        with SweepRunner(
            base_seed=5, workers=2, reuse_pool=False
        ) as runner:
            result = _sweep((4, 13), runner=runner).run()
            assert runner.executor.pools_created == len(result.waves)
