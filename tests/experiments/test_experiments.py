"""Tests for the experiment configuration and runners (quick runs)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.experiments.runner import measured_subnetwork, run_experiment
from repro.experiments.topology_a import (
    TABLE2_SETS,
    build_experiment,
    experiment_values,
    run_topology_a,
)
from repro.fluid.params import PathWorkload
from repro.topology.dumbbell import SHARED_LINK, build_dumbbell

QUICK = EmulationSettings(duration_seconds=60.0, warmup_seconds=5.0)


class TestSettings:
    def test_defaults_valid(self):
        EmulationSettings()

    def test_invalid_duration(self):
        with pytest.raises(ConfigurationError):
            EmulationSettings(duration_seconds=-1)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            EmulationSettings(loss_threshold=1.5)

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            EmulationSettings(normalization_mode="magic")

    def test_with_seed_and_quick(self):
        s = EmulationSettings().with_seed(9).quick(30.0)
        assert s.seed == 9
        assert s.duration_seconds == 30.0


class TestTable2Encoding:
    def test_all_nine_sets(self):
        assert set(TABLE2_SETS) == set(range(1, 10))

    def test_values_per_set(self):
        assert experiment_values(1) == (1.0, 10.0, 40.0, 10000.0)
        assert experiment_values(6) == (50.0, 40.0, 30.0, 20.0)
        assert experiment_values(3) == ("cubic", "newreno")

    def test_neutral_sets_have_no_mechanism(self):
        for n in (1, 2, 3):
            exp = build_experiment(n, experiment_values(n)[0])
            assert exp.mechanism is None
            assert not exp.expect_non_neutral

    def test_differentiated_sets(self):
        for n in (4, 5, 6):
            exp = build_experiment(n, experiment_values(n)[0])
            assert exp.mechanism == "policing"
        for n in (7, 8, 9):
            exp = build_experiment(n, experiment_values(n)[0])
            assert exp.mechanism == "shaping"

    def test_rate_varies_in_sets_6_and_9(self):
        exp = build_experiment(6, 20.0)
        assert exp.rate_fraction == pytest.approx(0.2)
        exp = build_experiment(9, 50.0)
        assert exp.rate_fraction == pytest.approx(0.5)

    def test_set1_heterogeneous_classes(self):
        exp = build_experiment(1, 10000.0)
        assert exp.workloads["p1"].slots[0].mean_size_mb == 1.0
        assert exp.workloads["p3"].slots[0].mean_size_mb == 10000.0

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            build_experiment(1, 3.0)


class TestRunner:
    def test_measured_subnetwork(self):
        topo = build_dumbbell()
        wl = {
            pid: PathWorkload(measured=(pid != "p4"))
            for pid in topo.network.path_ids
        }
        sub = measured_subnetwork(topo.network, wl)
        assert sub.path_ids == ("p1", "p2", "p3")

    def test_quick_neutral_run(self):
        out = run_topology_a(2, 50.0, QUICK)
        assert set(out.path_congestion) == {"p1", "p2", "p3", "p4"}
        assert out.quality is not None
        # Neutral network: a (wrong) identification would be an FP.
        assert out.quality.false_positive_rate in (0.0, 1.0 / 9.0) or True
        assert out.observations  # pathset observations exist

    def test_quick_policing_run_detects(self):
        out = run_topology_a(6, 20.0, QUICK)
        assert out.verdict_non_neutral
        assert out.quality.false_negative_rate == 0.0

    def test_ground_truth_optional(self):
        from repro.fluid.params import FlowSlotSpec

        topo = build_dumbbell()
        wl = {
            pid: PathWorkload(
                slots=(
                    FlowSlotSpec(
                        mean_size_mb=10.0, mean_gap_seconds=0.5
                    ),
                )
                * 5
            )
            for pid in topo.network.path_ids
        }
        out = run_experiment(
            topo.network,
            topo.classes,
            topo.link_specs,
            wl,
            settings=EmulationSettings(
                duration_seconds=15.0, warmup_seconds=2.0
            ),
        )
        assert out.quality is None


class TestTopologyBBatchedSweep:
    def test_batched_repetitions_match_unbatched(self):
        """Topology-B repetitions share everything but the seed, so
        they run as one scenario batch — which must reproduce the
        one-at-a-time sweep report for report."""
        import numpy as np
        from dataclasses import replace

        from repro.experiments.topology_b import (
            TOPOLOGY_B_SETTINGS,
            run_topology_b_sweep,
        )

        quick = replace(
            TOPOLOGY_B_SETTINGS,
            duration_seconds=15.0,
            warmup_seconds=2.0,
        )
        plain = run_topology_b_sweep(
            repetitions=2, settings=quick, batch_size=1
        )
        batched = run_topology_b_sweep(repetitions=2, settings=quick)
        for a, b in zip(plain, batched):
            assert a.ground_truth == b.ground_truth
            assert a.outcome.observations == b.outcome.observations
            assert (
                a.outcome.algorithm.identified
                == b.outcome.algorithm.identified
            )
            data_a = a.outcome.emulation.measurements
            data_b = b.outcome.emulation.measurements
            for pid in data_a.path_ids:
                np.testing.assert_array_equal(
                    data_a.record(pid).sent, data_b.record(pid).sent
                )
            for lid, trace in a.queue_traces_mb.items():
                np.testing.assert_array_equal(
                    trace, b.queue_traces_mb[lid]
                )
