"""Tests for the reporting helpers and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EmulationSettings, run_topology_a
from repro.experiments.reporting import (
    render_path_congestion,
    render_verdict,
)

QUICK = EmulationSettings(duration_seconds=45.0, warmup_seconds=5.0)


@pytest.fixture(scope="module")
def outcome():
    return run_topology_a(6, 30.0, QUICK)


class TestReporting:
    def test_render_path_congestion(self, outcome):
        text = render_path_congestion(outcome)
        assert "p1" in text and "P(congested)" in text

    def test_render_verdict(self, outcome):
        text = render_verdict(outcome)
        assert "verdict" in text
        assert "quality" in text


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["fig8", "--set", "6"])
        assert args.set == 6
        args = parser.parse_args(["topo-b", "--seed", "5"])
        assert args.seed == 5
        args = parser.parse_args(["theory"])
        assert args.command == "theory"

    def test_theory_command_runs(self, capsys):
        assert main(["theory"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out
        assert "<l1>" in out

    @staticmethod
    def _info_field(out, label):
        for line in out.splitlines():
            if line.strip().startswith(label):
                return line.split(label, 1)[1].strip()
        raise AssertionError(f"no {label!r} line in:\n{out}")

    def test_info_command_reports_backend(self, capsys):
        from repro.fluid import kernels
        from repro.substrate.registry import substrate_cache_tag

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        # The conftest pin makes the reported backend deterministic.
        assert self._info_field(out, "active:") == "numpy"
        assert self._info_field(out, "compiled:") == "no"
        numba = self._info_field(out, "numba:")
        assert (
            numba != "not installed"
            if kernels.NUMBA_AVAILABLE
            else numba == "not installed"
        )
        assert substrate_cache_tag("fluid") in out
        assert substrate_cache_tag("packet") in out

    def test_info_command_tracks_backend_override(self, capsys):
        from repro.fluid import kernels
        from repro.fluid.engine import KERNEL_ENGINE_VERSION

        with kernels.use_backend("python"):
            assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert self._info_field(out, "active:") == "python"
        assert KERNEL_ENGINE_VERSION in out

    def test_fig8_command_runs(self, capsys):
        code = main(
            [
                "fig8",
                "--set", "6",
                "--value", "30.0",
                "--duration", "30",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict" in out

    def test_fig8_packet_substrate_runs(self, capsys):
        code = main(
            [
                "fig8",
                "--set", "6",
                "--value", "30.0",
                "--duration", "30",
                "--seed", "1",
                "--substrate", "packet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict" in out

    def test_sweep_packet_substrate_runs(self, capsys):
        code = main(
            [
                "sweep",
                "--sets", "6",
                "--duration", "20",
                "--substrate", "packet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "topoA/set6" in out

    def test_sweep_reports_batches(self, capsys):
        code = main(
            ["sweep", "--sets", "6", "--duration", "15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Set 6 is rate-varying: its 4 points form one batch.
        assert "batching: 1 batch(es) covering 4 point(s)" in out

    def test_sweep_batch_size_one_disables(self, capsys):
        code = main(
            [
                "sweep",
                "--sets", "6",
                "--duration", "15",
                "--batch-size", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batching: 0 batch(es)" in out

    def test_sweep_bad_batch_size(self, capsys):
        code = main(
            ["sweep", "--sets", "6", "--batch-size", "0"]
        )
        assert code == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_unknown_substrate_reports_clean_error(self, capsys):
        code = main(
            ["fig8", "--set", "6", "--substrate", "ns3",
             "--duration", "30"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "error: unknown substrate 'ns3'" in captured.err
        assert "Traceback" not in captured.err

    def test_monitor_unknown_names_report_clean_errors(self, capsys):
        code = main(["monitor", "--substrate", "ns3"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error: unknown substrate 'ns3'" in captured.err
        assert "Traceback" not in captured.err

        code = main(["monitor", "--topology", "torus"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error: unknown topology 'torus'" in captured.err

        code = main(["monitor", "--mechanism", "bribery"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error: unknown mechanism 'bribery'" in captured.err

    def test_monitor_command_runs(self, capsys):
        code = main(
            [
                "monitor",
                "--duration", "20",
                "--warmup", "2",
                "--onset", "8",
                "--window", "60",
                "--chunk", "20",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flagged sequences" in out
        assert "final verdict" in out
        assert "onset at interval 80" in out

    def test_fig8_invalid_value(self, capsys):
        code = main(
            ["fig8", "--set", "6", "--value", "33.0", "--duration", "30"]
        )
        assert code == 2

    def test_sweep_summary_reports_timing(self, capsys):
        code = main(["sweep", "--sets", "6", "--duration", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "s wall" in out
        assert "ms/point executed" in out

    def test_sweep_adaptive_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            ["sweep", "--adaptive", "--resolution", "8",
             "--budget", "20"]
        )
        assert args.adaptive
        assert args.resolution == 8
        assert args.budget == 20

    def test_sweep_adaptive_runs(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--adaptive",
                "--resolution", "4",
                "--duration", "10",
                "--seed", "3",
                "--cache", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive sweep:" in out
        assert "frontier" in out
        assert "policing_rate" in out

    def test_sweep_budget_requires_adaptive(self, capsys):
        code = main(["sweep", "--sets", "6", "--budget", "10"])
        assert code == 2
        assert "--budget requires --adaptive" in capsys.readouterr().err

    def test_sweep_adaptive_bad_resolution(self, capsys):
        code = main(["sweep", "--adaptive", "--resolution", "1"])
        assert code == 2
        assert "--resolution" in capsys.readouterr().err

    def test_sweep_adaptive_bad_budget(self, capsys):
        code = main(["sweep", "--adaptive", "--budget", "0"])
        assert code == 2
        assert "--budget" in capsys.readouterr().err

    def test_sweep_adaptive_budget_below_coarse_pass(self, capsys):
        code = main(
            [
                "sweep",
                "--adaptive",
                "--resolution", "4",
                "--duration", "10",
                "--budget", "5",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "coarse pass" in err
        assert "Traceback" not in err


class TestTelemetryCli:
    def test_info_reports_disabled_state(self, capsys):
        from repro import telemetry

        assert not telemetry.enabled()  # conftest pin
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "state:           disabled" in out
        assert "REPRO_TELEMETRY: (unset)" in out

    def test_info_reports_export_directory(self, capsys, tmp_path):
        import os

        from repro import telemetry

        telemetry.configure(
            enabled=True,
            trace_path=os.path.join(
                str(tmp_path), telemetry.TRACE_FILENAME
            ),
        )
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert f"enabled, exporting to {tmp_path}" in out

    def test_trace_command_renders_tree_and_manifest(
        self, capsys, tmp_path
    ):
        from repro import telemetry

        path = str(tmp_path / telemetry.TRACE_FILENAME)
        telemetry.configure(enabled=True, trace_path=path)
        telemetry.write_manifest(
            telemetry.RunManifest.collect("cli-test", seed=4)
        )
        with telemetry.span("sweep.run"):
            with telemetry.span("sweep.point"):
                pass
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "manifest:" in out
        assert "kind: cli-test" in out
        assert "sweep.run" in out
        assert "  sweep.point" in out  # nested under its parent

    def test_trace_command_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error: cannot read" in capsys.readouterr().err

    def test_metrics_command_renders_table(self, capsys, tmp_path):
        from repro import telemetry

        telemetry.get_registry().counter(
            "repro_sweep_executed_total", substrate="fluid"
        ).inc(2)
        path = str(tmp_path / telemetry.METRICS_FILENAME)
        telemetry.get_registry().write_json(path)
        assert main(["metrics", path]) == 0
        out = capsys.readouterr().out
        assert "repro_sweep_executed_total{substrate=fluid}" in out

    def test_metrics_command_without_path_or_export_dir(self, capsys):
        assert main(["metrics"]) == 2
        assert "REPRO_TELEMETRY" in capsys.readouterr().err

    def test_exporting_run_finalizes_artifacts(self, capsys, tmp_path):
        """REPRO_TELEMETRY=<dir> CLI contract: an emulating command
        leaves trace.jsonl (spans + manifest) and metrics.json."""
        import json
        import os

        from repro import telemetry

        trace_path = os.path.join(
            str(tmp_path), telemetry.TRACE_FILENAME
        )
        telemetry.configure(enabled=True, trace_path=trace_path)
        assert main(["theory"]) == 0
        capsys.readouterr()
        records = telemetry.load_trace(trace_path)
        manifests = [r["manifest"] for r in records if "manifest" in r]
        assert manifests and manifests[-1]["kind"] == "cli:theory"
        metrics_path = os.path.join(
            str(tmp_path), telemetry.METRICS_FILENAME
        )
        with open(metrics_path, encoding="utf-8") as handle:
            json.load(handle)  # valid JSON registry export
