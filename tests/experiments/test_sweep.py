"""Tests for the parallel sweep runner: determinism, caching, seeding.

The load-bearing properties:

* same seed + config ⇒ identical results for ``workers=1`` and
  ``workers=4`` (parallelism must never leak into outcomes);
* the result cache returns hits instead of re-running;
* per-point seed derivation is stable and key-sensitive.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.experiments.sweep import (
    SweepPoint,
    SweepRunner,
    derive_seed,
)
from repro.experiments.topology_a import run_full_set, sweep_points

QUICK = EmulationSettings(duration_seconds=30.0, warmup_seconds=5.0)


# Module-level so worker pools can pickle it.
def _emulate_point(value, seed):
    """A tiny real emulation: seed-sensitive, value-sensitive."""
    from repro.fluid.params import FlowSlotSpec, PathWorkload
    from repro.fluid.engine import FluidNetwork
    from repro.topology.dumbbell import build_dumbbell

    topo = build_dumbbell()
    wl = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=value, mean_gap_seconds=2.0),)
            * 4,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }
    sim = FluidNetwork(
        topo.network, topo.classes, topo.link_specs, wl, seed=seed
    )
    res = sim.run(duration_seconds=5.0)
    return {
        pid: res.measurements.record(pid).sent.tolist()
        for pid in res.measurements.path_ids
    }


def _points(values=(1.0, 2.0, 5.0)):
    return [
        SweepPoint(
            key=f"point/{v}", func=_emulate_point, kwargs={"value": v}
        )
        for v in values
    ]


class TestSeedDerivation:
    def test_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_key_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_range(self):
        for base in (0, 1, 2**40):
            for key in ("x", "topoA/set1/10.0"):
                assert 0 <= derive_seed(base, key) < 2**31


class TestValidation:
    def test_workers_positive(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(workers=0)

    def test_duplicate_keys_rejected(self):
        runner = SweepRunner()
        pts = _points((1.0, 1.0))
        with pytest.raises(ConfigurationError):
            runner.run(pts)


class TestDeterminism:
    def test_workers_1_vs_4_identical(self):
        """The headline property: worker count never changes results."""
        seq = SweepRunner(base_seed=5, workers=1).run(_points())
        par = SweepRunner(base_seed=5, workers=4).run(_points())
        assert seq.keys() == par.keys()
        for key in seq:
            assert seq[key] == par[key], key

    def test_same_seed_reproduces(self):
        a = SweepRunner(base_seed=5, workers=2).run(_points())
        b = SweepRunner(base_seed=5, workers=2).run(_points())
        assert a == b

    def test_different_base_seed_differs(self):
        a = SweepRunner(base_seed=5, workers=1).run(_points((5.0,)))
        b = SweepRunner(base_seed=6, workers=1).run(_points((5.0,)))
        assert a != b

    def test_explicit_seed_overrides_derivation(self):
        pts = [
            SweepPoint(
                key="pinned",
                func=_emulate_point,
                kwargs={"value": 5.0},
                seed=123,
            )
        ]
        a = SweepRunner(base_seed=1).run(pts)
        b = SweepRunner(base_seed=999).run(pts)
        assert a == b  # base seed is irrelevant for pinned points

    def test_result_order_follows_point_order(self):
        results = SweepRunner(base_seed=5, workers=4).run(_points())
        assert list(results) == [p.key for p in _points()]


class TestCache:
    def test_hits_instead_of_rerun(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = SweepRunner(base_seed=5, cache_dir=cache)
        a = first.run(_points())
        assert first.stats.cache_hits == 0
        assert first.stats.executed == 3
        second = SweepRunner(base_seed=5, cache_dir=cache)
        b = second.run(_points())
        assert second.stats.cache_hits == 3
        assert second.stats.executed == 0
        assert a == b

    def test_seed_changes_cache_key(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_points((1.0,)))
        other = SweepRunner(base_seed=6, cache_dir=cache)
        other.run(_points((1.0,)))
        assert other.stats.cache_hits == 0
        assert other.stats.executed == 1

    def test_salt_changes_cache_key(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_points((1.0,)))
        salted = SweepRunner(base_seed=5, cache_dir=cache, cache_salt="x")
        salted.run(_points((1.0,)))
        assert salted.stats.cache_hits == 0

    def test_substrate_changes_cache_key(self, tmp_path):
        """Satellite regression: the digest used to fingerprint only
        the fluid engine version, so a packet-substrate point could
        replay a fluid-substrate result from a shared cache dir."""
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_points((1.0,)))
        packet_points = [
            SweepPoint(
                key="point/1.0",
                func=_emulate_point,
                kwargs={"value": 1.0},
                substrate="packet",
            )
        ]
        other = SweepRunner(base_seed=5, cache_dir=cache)
        other.run(packet_points)
        assert other.stats.cache_hits == 0
        assert other.stats.executed == 1

    def test_substrate_version_in_digest(self):
        from repro.emulator.core import PACKET_ENGINE_VERSION
        from repro.fluid.engine import ENGINE_VERSION

        fluid = _points((1.0,))[0]
        packet = SweepPoint(
            key="point/1.0",
            func=_emulate_point,
            kwargs={"value": 1.0},
            substrate="packet",
        )
        assert fluid.spec_digest(1, "") != packet.spec_digest(1, "")
        # Digest must move when the substrate's model version moves.
        import repro.substrate.registry as registry

        class _Stub:
            name = "fluid"
            version = ENGINE_VERSION + "-next"

        original = registry._SUBSTRATES["fluid"]
        registry._SUBSTRATES["fluid"] = _Stub()
        try:
            bumped = fluid.spec_digest(1, "")
        finally:
            registry._SUBSTRATES["fluid"] = original
        assert bumped != fluid.spec_digest(1, "")
        assert PACKET_ENGINE_VERSION  # packet version is a real tag

    def test_corrupt_entry_reruns(self, tmp_path):
        cache = tmp_path / "cache"
        runner = SweepRunner(base_seed=5, cache_dir=str(cache))
        runner.run(_points((1.0,)))
        for entry in cache.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        again = SweepRunner(base_seed=5, cache_dir=str(cache))
        again.run(_points((1.0,)))
        assert again.stats.executed == 1


class TestTopologyAWiring:
    def test_run_full_set_parallel_matches_sequential(self, tmp_path):
        """End-to-end: the Table 2 sweep through the real pipeline is
        worker-count-invariant, and caching replays it."""
        cache = str(tmp_path / "cache")
        seq = run_full_set(3, QUICK, workers=1)
        par = run_full_set(3, QUICK, workers=2, cache_dir=cache)
        assert [v for v, _ in seq] == [v for v, _ in par]
        for (_, a), (_, b) in zip(seq, par):
            assert a.verdict_non_neutral == b.verdict_non_neutral
            assert a.path_congestion == b.path_congestion
            for pid in a.emulation.measurements.path_ids:
                np.testing.assert_array_equal(
                    a.emulation.measurements.record(pid).sent,
                    b.emulation.measurements.record(pid).sent,
                )
        cached = run_full_set(3, QUICK, workers=2, cache_dir=cache)
        for (_, a), (_, c) in zip(par, cached):
            assert a.path_congestion == c.path_congestion

    def test_sweep_points_cover_sets(self):
        pts = sweep_points([1, 2], QUICK)
        assert len(pts) == 8  # 4 values + 4 values
        assert len({p.key for p in pts}) == 8
        assert all(p.seed is None for p in pts)
        pinned = sweep_points([1], QUICK, derive_seeds=False)
        assert all(p.seed == QUICK.seed for p in pinned)
