"""Tests for the parallel sweep runner: determinism, caching, seeding.

The load-bearing properties:

* same seed + config ⇒ identical results for ``workers=1`` and
  ``workers=4`` (parallelism must never leak into outcomes);
* the result cache returns hits instead of re-running;
* per-point seed derivation is stable and key-sensitive.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.experiments.sweep import (
    SweepPoint,
    SweepRunner,
    derive_seed,
)
from repro.experiments.topology_a import run_full_set, sweep_points

QUICK = EmulationSettings(duration_seconds=30.0, warmup_seconds=5.0)


# Module-level so worker pools can pickle it.
def _emulate_point(value, seed):
    """A tiny real emulation: seed-sensitive, value-sensitive."""
    from repro.fluid.params import FlowSlotSpec, PathWorkload
    from repro.fluid.engine import FluidNetwork
    from repro.topology.dumbbell import build_dumbbell

    topo = build_dumbbell()
    wl = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=value, mean_gap_seconds=2.0),)
            * 4,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }
    sim = FluidNetwork(
        topo.network, topo.classes, topo.link_specs, wl, seed=seed
    )
    res = sim.run(duration_seconds=5.0)
    return {
        pid: res.measurements.record(pid).sent.tolist()
        for pid in res.measurements.path_ids
    }


def _points(values=(1.0, 2.0, 5.0)):
    return [
        SweepPoint(
            key=f"point/{v}", func=_emulate_point, kwargs={"value": v}
        )
        for v in values
    ]


# Module-level batch executors (picklable for worker pools).
def _emulate_batch(seeds, kwargs_list):
    """Reference batch executor: per-member results must equal the
    single-point path exactly, so delegating to it is the contract."""
    return [
        _emulate_point(seed=seed, **kwargs)
        for seed, kwargs in zip(seeds, kwargs_list)
    ]


def _broken_batch(seeds, kwargs_list):
    raise RuntimeError("this batch executor always fails")


def _short_batch(seeds, kwargs_list):
    return [_emulate_point(seed=seeds[0], **kwargs_list[0])]


def _batched_points(values=(1.0, 2.0, 5.0), batch_func=_emulate_batch):
    return [
        SweepPoint(
            key=f"point/{v}",
            func=_emulate_point,
            kwargs={"value": v},
            batch_func=batch_func,
            batch_group="grp",
        )
        for v in values
    ]


class TestSeedDerivation:
    def test_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_key_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_range(self):
        for base in (0, 1, 2**40):
            for key in ("x", "topoA/set1/10.0"):
                assert 0 <= derive_seed(base, key) < 2**31


class TestValidation:
    def test_workers_positive(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(workers=0)

    def test_duplicate_keys_rejected(self):
        runner = SweepRunner()
        pts = _points((1.0, 1.0))
        with pytest.raises(ConfigurationError):
            runner.run(pts)


class TestDeterminism:
    def test_workers_1_vs_4_identical(self):
        """The headline property: worker count never changes results."""
        seq = SweepRunner(base_seed=5, workers=1).run(_points())
        par = SweepRunner(base_seed=5, workers=4).run(_points())
        assert seq.keys() == par.keys()
        for key in seq:
            assert seq[key] == par[key], key

    def test_same_seed_reproduces(self):
        a = SweepRunner(base_seed=5, workers=2).run(_points())
        b = SweepRunner(base_seed=5, workers=2).run(_points())
        assert a == b

    def test_different_base_seed_differs(self):
        a = SweepRunner(base_seed=5, workers=1).run(_points((5.0,)))
        b = SweepRunner(base_seed=6, workers=1).run(_points((5.0,)))
        assert a != b

    def test_explicit_seed_overrides_derivation(self):
        pts = [
            SweepPoint(
                key="pinned",
                func=_emulate_point,
                kwargs={"value": 5.0},
                seed=123,
            )
        ]
        a = SweepRunner(base_seed=1).run(pts)
        b = SweepRunner(base_seed=999).run(pts)
        assert a == b  # base seed is irrelevant for pinned points

    def test_result_order_follows_point_order(self):
        results = SweepRunner(base_seed=5, workers=4).run(_points())
        assert list(results) == [p.key for p in _points()]


class TestCache:
    def test_hits_instead_of_rerun(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = SweepRunner(base_seed=5, cache_dir=cache)
        a = first.run(_points())
        assert first.stats.cache_hits == 0
        assert first.stats.executed == 3
        second = SweepRunner(base_seed=5, cache_dir=cache)
        b = second.run(_points())
        assert second.stats.cache_hits == 3
        assert second.stats.executed == 0
        assert a == b

    def test_seed_changes_cache_key(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_points((1.0,)))
        other = SweepRunner(base_seed=6, cache_dir=cache)
        other.run(_points((1.0,)))
        assert other.stats.cache_hits == 0
        assert other.stats.executed == 1

    def test_salt_changes_cache_key(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_points((1.0,)))
        salted = SweepRunner(base_seed=5, cache_dir=cache, cache_salt="x")
        salted.run(_points((1.0,)))
        assert salted.stats.cache_hits == 0

    def test_substrate_changes_cache_key(self, tmp_path):
        """Satellite regression: the digest used to fingerprint only
        the fluid engine version, so a packet-substrate point could
        replay a fluid-substrate result from a shared cache dir."""
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_points((1.0,)))
        packet_points = [
            SweepPoint(
                key="point/1.0",
                func=_emulate_point,
                kwargs={"value": 1.0},
                substrate="packet",
            )
        ]
        other = SweepRunner(base_seed=5, cache_dir=cache)
        other.run(packet_points)
        assert other.stats.cache_hits == 0
        assert other.stats.executed == 1

    def test_substrate_version_in_digest(self):
        from repro.emulator.core import PACKET_ENGINE_VERSION
        from repro.fluid.engine import ENGINE_VERSION

        fluid = _points((1.0,))[0]
        packet = SweepPoint(
            key="point/1.0",
            func=_emulate_point,
            kwargs={"value": 1.0},
            substrate="packet",
        )
        assert fluid.spec_digest(1, "") != packet.spec_digest(1, "")
        # Digest must move when the substrate's model version moves.
        import repro.substrate.registry as registry

        class _Stub:
            name = "fluid"
            version = ENGINE_VERSION + "-next"

        original = registry._SUBSTRATES["fluid"]
        registry._SUBSTRATES["fluid"] = _Stub()
        try:
            bumped = fluid.spec_digest(1, "")
        finally:
            registry._SUBSTRATES["fluid"] = original
        assert bumped != fluid.spec_digest(1, "")
        assert PACKET_ENGINE_VERSION  # packet version is a real tag

    def test_kernel_backend_versions_digest(self):
        """Cache keys are honest about the kernel backend: the fused
        backends run at calibrated fp tolerance, so their entries
        must never be mistaken for numpy-backend results — the
        substrate tag (hence the digest) moves with the backend
        family. Both fused backends (numba, python) run identical
        kernel code, so they share one tag."""
        from repro.emulator.core import (
            PACKET_ENGINE_VERSION,
            PACKET_KERNEL_VERSION,
        )
        from repro.fluid.engine import ENGINE_VERSION, KERNEL_ENGINE_VERSION
        from repro.fluid import kernels
        from repro.substrate.registry import substrate_cache_tag

        fluid = _points((1.0,))[0]
        with kernels.use_backend("numpy"):
            assert substrate_cache_tag("fluid") == f"fluid:{ENGINE_VERSION}"
            assert (
                substrate_cache_tag("packet")
                == f"packet:{PACKET_ENGINE_VERSION}"
            )
            numpy_digest = fluid.spec_digest(1, "")
            assert numpy_digest == fluid.spec_digest(1, "")  # stable
        with kernels.use_backend("python"):
            assert (
                substrate_cache_tag("fluid")
                == f"fluid:{KERNEL_ENGINE_VERSION}"
            )
            assert (
                substrate_cache_tag("packet")
                == f"packet:{PACKET_KERNEL_VERSION}"
            )
            assert fluid.spec_digest(1, "") != numpy_digest

    def test_corrupt_entry_reruns(self, tmp_path):
        cache = tmp_path / "cache"
        runner = SweepRunner(base_seed=5, cache_dir=str(cache))
        runner.run(_points((1.0,)))
        for entry in cache.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        again = SweepRunner(base_seed=5, cache_dir=str(cache))
        again.run(_points((1.0,)))
        assert again.stats.executed == 1

    def test_truncated_entry_reruns_and_heals(self, tmp_path):
        """Satellite regression: a crashed worker must never be able
        to leave a truncated pickle that poisons ``_cache_load``. The
        atomic temp-file + ``os.replace`` write makes truncation
        impossible in-process; if one appears anyway (kill -9 legacy
        file, disk-full remnant), loading must treat it as a miss and
        the re-run must heal the entry."""
        cache = tmp_path / "cache"
        runner = SweepRunner(base_seed=5, cache_dir=str(cache))
        first = runner.run(_points((1.0,)))
        entries = list(cache.glob("*.pkl"))
        assert len(entries) == 1
        valid = entries[0].read_bytes()
        entries[0].write_bytes(valid[: len(valid) // 2])  # truncate
        again = SweepRunner(base_seed=5, cache_dir=str(cache))
        healed = again.run(_points((1.0,)))
        assert again.stats.cache_hits == 0
        assert again.stats.executed == 1
        assert healed == first
        # ...and the entry is whole again afterwards.
        third = SweepRunner(base_seed=5, cache_dir=str(cache))
        assert third.run(_points((1.0,))) == first
        assert third.stats.cache_hits == 1

    def test_failed_store_preserves_existing_entry(self, tmp_path, monkeypatch):
        """A write that dies mid-pickle must leave the previous entry
        (and no temp litter) behind — the rename is all-or-nothing."""
        import pickle as pickle_module

        cache = tmp_path / "cache"
        runner = SweepRunner(base_seed=5, cache_dir=str(cache))
        first = runner.run(_points((1.0,)))
        [entry] = list(cache.glob("*.pkl"))
        before = entry.read_bytes()

        def exploding_dump(obj, fh, protocol=None):
            fh.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(pickle_module, "dump", exploding_dump)
        # Force a re-execution (cache_salt change) writing to the same
        # directory; its store attempt fails mid-write.
        salted = SweepRunner(
            base_seed=5, cache_dir=str(cache), cache_salt="x"
        )
        rerun = salted.run(_points((1.0,)))
        monkeypatch.undo()
        assert rerun == first  # result still produced
        assert entry.read_bytes() == before  # old entry untouched
        assert not list(cache.glob("*.tmp*"))  # no litter


class TestBatching:
    def test_batched_equals_single(self, tmp_path):
        """Grouped execution must be invisible in the results."""
        plain = SweepRunner(base_seed=5).run(_points())
        batched = SweepRunner(base_seed=5).run(_batched_points())
        assert plain == batched

    def test_batched_equals_single_parallel(self):
        plain = SweepRunner(base_seed=5, workers=1).run(_points())
        batched = SweepRunner(base_seed=5, workers=3).run(
            _batched_points()
        )
        assert plain == batched

    def test_stats_count_batches(self):
        runner = SweepRunner(base_seed=5)
        runner.run(_batched_points())
        assert runner.stats.batches == 1
        assert runner.stats.batched_points == 3
        assert runner.stats.executed == 3

    def test_batch_size_caps_groups(self):
        runner = SweepRunner(base_seed=5, batch_size=2)
        runner.run(_batched_points((1.0, 2.0, 5.0, 7.0, 9.0)))
        # 5 points at cap 2 -> batches of 2+2, last point single.
        assert runner.stats.batches == 2
        assert runner.stats.batched_points == 4

    def test_batch_size_one_disables(self):
        runner = SweepRunner(base_seed=5, batch_size=1)
        results = runner.run(_batched_points())
        assert runner.stats.batches == 0
        assert results == SweepRunner(base_seed=5).run(_points())

    def test_mixed_groups_and_singles(self):
        points = _batched_points((1.0, 2.0)) + _points((5.0,))
        runner = SweepRunner(base_seed=5)
        results = runner.run(points)
        assert runner.stats.batches == 1
        assert runner.stats.batched_points == 2
        assert results == SweepRunner(base_seed=5).run(_points())

    def test_lone_group_member_runs_single(self):
        runner = SweepRunner(base_seed=5)
        runner.run(_batched_points((1.0,)))
        assert runner.stats.batches == 0
        assert runner.stats.executed == 1

    def test_failed_batch_retries_members_singly(self):
        """The retry phase: a broken batch executor must not lose the
        sweep — every member re-runs through its own func, and the
        failure is surfaced as a warning, not swallowed."""
        runner = SweepRunner(base_seed=5)
        with pytest.warns(RuntimeWarning, match="always fails"):
            results = runner.run(
                _batched_points(batch_func=_broken_batch)
            )
        assert runner.stats.batch_retries == 3
        assert results == SweepRunner(base_seed=5).run(_points())

    def test_failed_batch_retries_members_singly_parallel(self):
        runner = SweepRunner(base_seed=5, workers=3)
        with pytest.warns(RuntimeWarning, match="retrying each point"):
            results = runner.run(
                _batched_points(batch_func=_broken_batch)
            )
        assert runner.stats.batch_retries == 3
        assert results == SweepRunner(base_seed=5).run(_points())

    def test_wrong_length_batch_result_retried(self):
        runner = SweepRunner(base_seed=5)
        with pytest.warns(RuntimeWarning):
            results = runner.run(
                _batched_points(batch_func=_short_batch)
            )
        assert runner.stats.batch_retries == 3
        assert results == SweepRunner(base_seed=5).run(_points())

    def test_mismatched_batch_members_recovered_via_guard(self):
        """Review regression: the topology-A batch executor rejects
        members whose shared kwargs disagree (an incomplete
        batch_group upstream must fail loudly, not emulate a member
        under another member's settings); the runner then recovers
        every point singly with correct results."""
        other = EmulationSettings(
            duration_seconds=30.0, warmup_seconds=5.0, seed=9
        )
        from repro.experiments.topology_a import (
            _sweep_point,
            _sweep_point_batch,
        )

        points = [
            SweepPoint(
                key=f"mix/{i}",
                func=_sweep_point,
                kwargs={
                    "set_number": 6,
                    "value": value,
                    "settings": settings,
                    "substrate": "fluid",
                },
                batch_func=_sweep_point_batch,
                batch_group="mix",  # deliberately too-coarse group
            )
            for i, (value, settings) in enumerate(
                [(30.0, QUICK), (20.0, other)]
            )
        ]
        runner = SweepRunner(base_seed=5)
        with pytest.warns(RuntimeWarning, match="must share"):
            results = runner.run(points)
        assert runner.stats.batch_retries == 2
        singles = SweepRunner(base_seed=5, batch_size=1).run(points)
        for key in results:
            assert (
                results[key].path_congestion
                == singles[key].path_congestion
            )

    def test_cache_interchangeable_with_single_results(self, tmp_path):
        """Per-point digests are batching-agnostic: a batched sweep
        fills the cache a later unbatched sweep hits, and vice
        versa."""
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_batched_points())
        unbatched = SweepRunner(
            base_seed=5, cache_dir=cache, batch_size=1
        )
        results = unbatched.run(_points())
        assert unbatched.stats.cache_hits == 3
        assert unbatched.stats.executed == 0
        assert results == SweepRunner(base_seed=5).run(_points())

    def test_partial_cache_batches_only_misses(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_points((1.0,)))
        runner = SweepRunner(base_seed=5, cache_dir=cache)
        runner.run(_batched_points((1.0, 2.0, 5.0)))
        assert runner.stats.cache_hits == 1
        assert runner.stats.batches == 1
        assert runner.stats.batched_points == 2

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(batch_size=0)


class TestTiming:
    def test_executed_points_are_timed(self):
        runner = SweepRunner(base_seed=5)
        runner.run(_points())
        stats = runner.stats
        assert set(stats.point_seconds) == {
            p.key for p in _points()
        }
        assert all(s >= 0.0 for s in stats.point_seconds.values())
        assert stats.wall_seconds > 0.0
        assert stats.executed_seconds == pytest.approx(
            sum(stats.point_seconds.values())
        )
        # Compute time is bounded by the (sequential) wall clock.
        assert stats.executed_seconds <= stats.wall_seconds

    def test_cache_hits_are_not_timed(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepRunner(base_seed=5, cache_dir=cache).run(_points())
        replay = SweepRunner(base_seed=5, cache_dir=cache)
        replay.run(_points())
        assert replay.stats.point_seconds == {}
        assert replay.stats.executed_seconds == 0.0
        # ...but the run still reports a wall clock.
        assert replay.stats.wall_seconds > 0.0

    def test_batch_elapsed_split_across_members(self):
        """A batch's elapsed time is attributed evenly to its
        members, so per-point accounting stays comparable between
        batched and single execution."""
        runner = SweepRunner(base_seed=5)
        runner.run(_batched_points())
        shares = runner.stats.point_seconds
        assert len(shares) == 3
        assert len(set(shares.values())) == 1  # one equal split

    def test_re_executed_digest_accumulates_timing(self, monkeypatch):
        """Regression: a digest whose ok-payload lands more than once
        in one run (e.g. its batch result arrived *and* it re-ran
        singly in the batch-retry phase) used to keep only the *last*
        execution's seconds, silently dropping the earlier compute
        from ``point_seconds`` / ``executed_seconds``. Both slices
        must accumulate."""
        import repro.experiments.sweep as sweep_mod

        real = sweep_mod._execute_task

        def re_executed(task):
            outcome = real(task)
            if outcome[0] != "ok":
                return outcome
            payload = [(d, r, 1.0) for d, r, _ in outcome[1]]
            return ("ok", payload * 2)  # same digest observed twice

        monkeypatch.setattr(sweep_mod, "_execute_task", re_executed)
        runner = SweepRunner(base_seed=5)
        runner.run(_points((1.0,)))
        assert runner.stats.executed == 2
        assert runner.stats.point_seconds == {
            "point/1.0": pytest.approx(2.0)
        }
        assert runner.stats.executed_seconds == pytest.approx(2.0)

    def test_failed_batch_retry_records_retry_timing(self, monkeypatch):
        """The batch-retry phase: a failed batch contributes no
        timing, and each member's single re-run is charged exactly
        once to its own key."""
        import repro.experiments.sweep as sweep_mod

        real = sweep_mod._execute_task

        def pinned_time(task):
            outcome = real(task)
            if outcome[0] != "ok":
                return outcome
            return ("ok", [(d, r, 1.0) for d, r, _ in outcome[1]])

        monkeypatch.setattr(sweep_mod, "_execute_task", pinned_time)
        runner = SweepRunner(base_seed=5)
        with pytest.warns(RuntimeWarning, match="always fails"):
            runner.run(_batched_points(batch_func=_broken_batch))
        assert runner.stats.batch_retries == 3
        assert runner.stats.point_seconds == {
            p.key: pytest.approx(1.0) for p in _points()
        }
        assert runner.stats.executed_seconds == pytest.approx(3.0)


class TestTopologyAWiring:
    def test_run_full_set_parallel_matches_sequential(self, tmp_path):
        """End-to-end: the Table 2 sweep through the real pipeline is
        worker-count-invariant, and caching replays it."""
        cache = str(tmp_path / "cache")
        seq = run_full_set(3, QUICK, workers=1)
        par = run_full_set(3, QUICK, workers=2, cache_dir=cache)
        assert [v for v, _ in seq] == [v for v, _ in par]
        for (_, a), (_, b) in zip(seq, par):
            assert a.verdict_non_neutral == b.verdict_non_neutral
            assert a.path_congestion == b.path_congestion
            for pid in a.emulation.measurements.path_ids:
                np.testing.assert_array_equal(
                    a.emulation.measurements.record(pid).sent,
                    b.emulation.measurements.record(pid).sent,
                )
        cached = run_full_set(3, QUICK, workers=2, cache_dir=cache)
        for (_, a), (_, c) in zip(par, cached):
            assert a.path_congestion == c.path_congestion

    def test_sweep_points_cover_sets(self):
        pts = sweep_points([1, 2], QUICK)
        assert len(pts) == 8  # 4 values + 4 values
        assert len({p.key for p in pts}) == 8
        assert all(p.seed is None for p in pts)
        pinned = sweep_points([1], QUICK, derive_seeds=False)
        assert all(p.seed == QUICK.seed for p in pinned)

    def test_rate_varying_sets_carry_batch_hooks(self):
        """Sets 6/9 share topology+workloads across values (only the
        mechanism rate changes), so they batch on the fluid
        substrate; workload-varying sets and batchless substrates
        must not."""
        for set_number in (6, 9):
            pts = sweep_points([set_number], QUICK)
            assert all(p.batch_func is not None for p in pts)
            assert len({p.batch_group for p in pts}) == 1
        for set_number in (1, 4, 7):
            assert all(
                p.batch_func is None
                for p in sweep_points([set_number], QUICK)
            )
        assert all(
            p.batch_func is None
            for p in sweep_points([6], QUICK, substrate="packet")
        )

    def test_batched_set6_matches_unbatched(self):
        """The real scenario-batched pipeline: one Table 2 rate grid
        emulated as a batch must reproduce the one-at-a-time sweep
        outcome for outcome, bit for bit."""
        quick = EmulationSettings(
            duration_seconds=20.0, warmup_seconds=2.0
        )
        plain = run_full_set(6, quick, batch_size=1)
        runner_checked = run_full_set(6, quick)
        for (va, a), (vb, b) in zip(plain, runner_checked):
            assert va == vb
            assert a.verdict_non_neutral == b.verdict_non_neutral
            assert a.path_congestion == b.path_congestion
            assert a.observations == b.observations
            for pid in a.emulation.measurements.path_ids:
                np.testing.assert_array_equal(
                    a.emulation.measurements.record(pid).sent,
                    b.emulation.measurements.record(pid).sent,
                )
                np.testing.assert_array_equal(
                    a.emulation.measurements.record(pid).lost,
                    b.emulation.measurements.record(pid).lost,
                )

    def test_batched_cache_interchangeable_with_singles(self, tmp_path):
        """A batched Table 2 sweep fills the same per-point cache
        entries the unbatched sweep would hit."""
        quick = EmulationSettings(
            duration_seconds=15.0, warmup_seconds=2.0
        )
        cache = str(tmp_path / "cache")
        run_full_set(6, quick, cache_dir=cache)  # batched fill
        runner = SweepRunner.for_settings(
            quick, cache_dir=cache, batch_size=1
        )
        runner.run(sweep_points([6], quick, derive_seeds=False))
        assert runner.stats.cache_hits == 4
        assert runner.stats.executed == 0


class TestPersistentPool:
    def test_pool_survives_runs(self):
        """The tentpole property: one warm pool serves every run()."""
        with SweepRunner(base_seed=5, workers=2) as runner:
            first = runner.run(_points())
            assert runner.stats.workers == 2
            assert runner.stats.pool_reused is False
            assert runner.stats.pool_setup_seconds > 0.0
            second = runner.run(_points())
            assert runner.stats.pool_reused is True
            assert runner.stats.pool_setup_seconds == 0.0
            assert runner.executor.pools_created == 1
            assert runner.executor.reuses == 1
        assert first == second
        # Closed: the next run builds a fresh pool.
        third = runner.run(_points())
        assert runner.executor.pools_created == 2
        assert third == first

    def test_reuse_pool_false_restores_per_run_pools(self):
        with SweepRunner(
            base_seed=5, workers=2, reuse_pool=False
        ) as runner:
            a = runner.run(_points())
            b = runner.run(_points())
            assert runner.executor.pools_created == 2
            assert runner.stats.pool_reused is False
        assert a == b

    def test_results_identical_to_inline(self):
        seq = SweepRunner(base_seed=5, workers=1).run(_points())
        with SweepRunner(base_seed=5, workers=2) as runner:
            runner.run(_points())
            par = runner.run(_points())  # warm-pool run
            assert runner.stats.pool_reused is True
        assert par == seq

    def test_inline_runner_never_builds_a_pool(self):
        runner = SweepRunner(base_seed=5, workers=1)
        runner.run(_points((1.0,)))
        assert runner.executor is None
        assert runner.stats.workers == 1
        assert runner.stats.pool_reused is False
        runner.close()  # no-op, must not raise

    def test_batch_retry_keeps_pool_warm(self):
        """A failed batch retries point-by-point on the same warm
        pool, which stays reusable for the next run."""
        expected = SweepRunner(base_seed=5, workers=1).run(_points())
        with SweepRunner(base_seed=5, workers=2) as runner:
            with pytest.warns(RuntimeWarning, match="retrying each"):
                got = runner.run(
                    _batched_points(batch_func=_broken_batch)
                )
            assert runner.stats.batch_retries == 3
            assert got == expected
            runner.run(_points())
            assert runner.stats.pool_reused is True
            assert runner.executor.pools_created == 1

    def test_summary_renders_pool_line(self):
        from repro.experiments.reporting import render_sweep_summary

        with SweepRunner(base_seed=5, workers=2) as runner:
            runner.run(_points())
            runner.run(_points())
            summary = render_sweep_summary({}, runner.stats)
        assert "parallel: 2 workers, warm pool reused" in summary
