"""Shared configuration for the seeded-equivalence golden tests.

The golden file (``golden/scalar_goldens.json``) holds per-path
``(sent, lost)`` totals and congestion probabilities captured from the
*pre-vectorization scalar engine* (the seed implementation, now frozen
as :mod:`repro.fluid.engine_scalar`). The equivalence test re-runs the
same configurations on the vectorized engine and compares against
these numbers with tolerances — locking in that the rewrite changed
the arithmetic layout, not the emulated physics.

Regenerate (only if the *reference* model itself legitimately changes)
with::

    PYTHONPATH=src python tests/fluid/golden_config.py
"""

import json
import os

import numpy as np

from repro.fluid.params import FlowSlotSpec, PathWorkload
from repro.measurement.normalize import path_congestion_probability
from repro.topology.dumbbell import build_dumbbell

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "scalar_goldens.json"
)

#: The three locked configurations: neutral, policing, shaping.
SCENARIOS = ("neutral", "policing", "shaping")

SEED = 7
DURATION = 40.0
WARMUP = 5.0
RATE_FRACTION = 0.3
SLOTS_PER_PATH = 10


def scenario_inputs(scenario):
    """Build the (net, classes, link_specs, workloads) of one scenario."""
    mechanism = None if scenario == "neutral" else scenario
    topo = build_dumbbell(mechanism=mechanism, rate_fraction=RATE_FRACTION)
    workloads = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=10.0, mean_gap_seconds=2.0),)
            * SLOTS_PER_PATH,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }
    return topo, workloads


def summarize(result):
    """Reduce one FluidResult to the golden summary dict."""
    out = {"paths": {}, "l5_class_congestion": {}}
    for pid in sorted(result.measurements.path_ids):
        rec = result.measurements.record(pid)
        out["paths"][pid] = {
            "sent": int(rec.sent.sum()),
            "lost": int(rec.lost.sum()),
            "p_congested": float(
                path_congestion_probability(result.measurements, pid)
            ),
        }
    for cname in ("c1", "c2"):
        out["l5_class_congestion"][cname] = float(
            result.link_congestion_probability("l5", cname)
        )
    return out


def run_scenario(engine_cls, scenario):
    """Run one scenario on the given engine class and summarize it."""
    topo, workloads = scenario_inputs(scenario)
    sim = engine_cls(
        topo.network, topo.classes, topo.link_specs, workloads, seed=SEED
    )
    result = sim.run(duration_seconds=DURATION, warmup_seconds=WARMUP)
    return summarize(result)


def capture(engine_cls):
    """Capture golden summaries for every scenario."""
    return {sc: run_scenario(engine_cls, sc) for sc in SCENARIOS}


if __name__ == "__main__":
    from repro.fluid.engine_scalar import ScalarFluidNetwork

    goldens = capture(ScalarFluidNetwork)
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(goldens, fh, indent=2, sort_keys=True)
    print(f"wrote {GOLDEN_PATH}")
