"""Scenario-batched engine ≡ independent single runs, bit for bit.

The batched fluid engine's contract (:mod:`repro.fluid.batch`) is
floating-point identity: slicing scenario ``b`` out of a batch must
give *exactly* the arrays a lone :class:`~repro.fluid.engine.
FluidNetwork` produces with that scenario's specs and seed — same
records, same ground truth, same RTT traces, same queue occupancy.
These tests pin that contract over random topologies, random
mechanism mixes (policing / shaping / AQM / weighted / neutral),
heterogeneous per-scenario durations (the active mask), and mid-run
per-scenario spec swaps through the session path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.classes import two_classes
from repro.exceptions import ConfigurationError, EmulationError
from repro.fluid.batch import FluidBatchNetwork, run_batch
from repro.fluid.engine import FluidNetwork
from repro.fluid.params import (
    AqmSpec,
    FluidLinkSpec,
    FlowSlotSpec,
    PathWorkload,
    PolicerSpec,
    ShaperSpec,
    WeightedShaperSpec,
)
from repro.topology.generators import chain_network, star_network

DT = 0.01
INTERVAL = 0.1


def _assert_results_identical(single, batched, label=""):
    assert (
        single.measurements.path_ids == batched.measurements.path_ids
    ), label
    for pid in single.measurements.path_ids:
        rs = single.measurements.record(pid)
        rb = batched.measurements.record(pid)
        np.testing.assert_array_equal(rs.sent, rb.sent, err_msg=f"{label} sent {pid}")
        np.testing.assert_array_equal(rs.lost, rb.lost, err_msg=f"{label} lost {pid}")
    for lid, trace in single.queue_occupancy.items():
        np.testing.assert_array_equal(
            trace, batched.queue_occupancy[lid], err_msg=f"{label} occ {lid}"
        )
    for lid, per_class in single.link_class_arrivals.items():
        for cn, series in per_class.items():
            np.testing.assert_array_equal(
                series,
                batched.link_class_arrivals[lid][cn],
                err_msg=f"{label} arrivals {lid}/{cn}",
            )
            np.testing.assert_array_equal(
                single.link_class_drops[lid][cn],
                batched.link_class_drops[lid][cn],
                err_msg=f"{label} drops {lid}/{cn}",
            )
    for pid, series in single.path_rtt_seconds.items():
        np.testing.assert_array_equal(
            series,
            batched.path_rtt_seconds[pid],
            err_msg=f"{label} rtt {pid}",
        )
    assert single.flows_completed == batched.flows_completed, label


def _topology(draw):
    kind = draw(st.sampled_from(["star3", "star4", "chain"]))
    if kind == "chain":
        net = chain_network(num_hops=2, num_paths=3)
    else:
        net = star_network(int(kind[-1]))
    c2 = sorted(net.path_ids)[: max(1, len(net.path_ids) // 2)]
    classes = two_classes(net, c2)
    return net, classes


def _mechanism(draw, target):
    family = draw(
        st.sampled_from(["policer", "shaper", "aqm", "weighted", "none"])
    )
    rate = draw(
        st.floats(0.15, 0.6).filter(lambda r: 0.0 < r < 1.0)
    )
    if family == "policer":
        return {"policer": PolicerSpec(target, rate)}
    if family == "shaper":
        return {"shaper": ShaperSpec(target, rate)}
    if family == "aqm":
        return {"aqm": AqmSpec(target)}
    if family == "weighted":
        return {"weighted": WeightedShaperSpec(target, rate)}
    return {}


def _spec_set(draw, net, classes):
    """One scenario's link specs: 1–2 differentiating links."""
    link_ids = sorted(net.link_ids)
    # Differentiate on the most-shared link(s) so mechanisms see
    # cross-class traffic; capacities low enough to congest quickly.
    shared = sorted(
        link_ids,
        key=lambda lid: -sum(lid in net.path(p).links for p in net.path_ids),
    )
    specs = {}
    num_mech = draw(st.integers(0, 2))
    for lid in shared[:num_mech]:
        specs[lid] = FluidLinkSpec(
            capacity_mbps=draw(st.sampled_from([30.0, 50.0])),
            buffer_rtt_seconds=0.1,
            **_mechanism(draw, "c2"),
        )
    for lid in link_ids:
        specs.setdefault(
            lid,
            FluidLinkSpec(capacity_mbps=60.0, buffer_rtt_seconds=0.1),
        )
    return specs


def _workloads(draw, net):
    out = {}
    for pid in sorted(net.path_ids):
        out[pid] = PathWorkload(
            slots=(
                FlowSlotSpec(
                    mean_size_mb=draw(st.sampled_from([2.0, 6.0, 15.0])),
                    mean_gap_seconds=draw(st.sampled_from([0.5, 2.0])),
                ),
            )
            * draw(st.integers(1, 3)),
            rtt_seconds=draw(st.sampled_from([0.03, 0.05, 0.08])),
            congestion_control=draw(
                st.sampled_from(["cubic", "newreno"])
            ),
        )
    return out


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_batched_slices_match_single_runs(data):
    """Random topologies/specs/durations: batch[b] == single run b."""
    draw = data.draw
    net, classes = _topology(draw)
    workloads = _workloads(draw, net)
    num_scenarios = draw(st.integers(2, 4))
    spec_sets = [
        _spec_set(draw, net, classes) for _ in range(num_scenarios)
    ]
    seeds = [
        draw(st.integers(0, 2**20)) for _ in range(num_scenarios)
    ]
    durations = [
        draw(st.sampled_from([2.0, 3.0, 4.0]))
        for _ in range(num_scenarios)
    ]
    warmup = draw(st.sampled_from([0.0, 0.5]))

    batched = run_batch(
        net, classes, spec_sets, workloads, seeds, durations,
        dt=DT, interval_seconds=INTERVAL, warmup_seconds=warmup,
    )
    for b in range(num_scenarios):
        single = FluidNetwork(
            net, classes, spec_sets[b], workloads, seed=seeds[b]
        ).run(
            duration_seconds=durations[b],
            dt=DT,
            interval_seconds=INTERVAL,
            warmup_seconds=warmup,
        )
        _assert_results_identical(single, batched[b], label=f"b={b}")


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_session_segment_swaps_match_single_sessions(data):
    """Per-scenario mid-run spec swaps through the session path.

    Each scenario advances in the same segmentation in batch and
    single form; a random subset of scenarios swaps to a second spec
    set at a random chunk boundary. Chunks and packaged results must
    be bit-identical.
    """
    draw = data.draw
    net, classes = _topology(draw)
    workloads = _workloads(draw, net)
    num_scenarios = draw(st.integers(2, 3))
    spec_sets = [
        _spec_set(draw, net, classes) for _ in range(num_scenarios)
    ]
    swap_sets = [
        _spec_set(draw, net, classes) for _ in range(num_scenarios)
    ]
    swappers = [
        draw(st.booleans()) for _ in range(num_scenarios)
    ]
    seeds = [
        draw(st.integers(0, 2**20)) for _ in range(num_scenarios)
    ]
    segments = draw(
        st.sampled_from([(10, 10, 10), (5, 15, 10), (12, 6, 12)])
    )
    swap_after = draw(st.integers(0, 1))  # swap at end of segment 0/1

    batch_net = FluidBatchNetwork(
        net, classes, spec_sets, workloads, seeds
    )
    batch_sess = batch_net.session(
        dt=DT, interval_seconds=INTERVAL, warmup_seconds=0.5
    )
    single_sessions = []
    for b in range(num_scenarios):
        sim = FluidNetwork(
            net, classes, spec_sets[b], workloads, seed=seeds[b]
        )
        single_sessions.append(
            sim.session(
                dt=DT, interval_seconds=INTERVAL, warmup_seconds=0.5
            )
        )
    for i, seg in enumerate(segments):
        batch_chunks = batch_sess.advance(seg)
        for b, sess in enumerate(single_sessions):
            chunk = sess.advance(seg)
            np.testing.assert_array_equal(
                chunk.sent, batch_chunks[b].sent, err_msg=f"seg{i} b{b}"
            )
            np.testing.assert_array_equal(
                chunk.lost, batch_chunks[b].lost, err_msg=f"seg{i} b{b}"
            )
            assert chunk.start_interval == batch_chunks[b].start_interval
        if i == swap_after:
            for b in range(num_scenarios):
                if swappers[b]:
                    batch_sess.set_link_specs(swap_sets[b], scenario=b)
                    single_sessions[b].set_link_specs(swap_sets[b])
    for b in range(num_scenarios):
        _assert_results_identical(
            single_sessions[b].result(),
            batch_sess.result(b),
            label=f"swap b={b}",
        )


def test_all_mechanism_families_in_one_batch():
    """Deterministic pin: the four families plus neutral, one batch."""
    from repro.topology.dumbbell import SHARED_LINK, build_dumbbell

    topo = build_dumbbell()
    wl = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=6.0, mean_gap_seconds=1.5),)
            * 3,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }
    base = dict(topo.link_specs)

    def with_mech(**mech):
        specs = dict(base)
        spec = specs[SHARED_LINK]
        specs[SHARED_LINK] = FluidLinkSpec(
            capacity_mbps=spec.capacity_mbps,
            buffer_rtt_seconds=spec.buffer_rtt_seconds,
            **mech,
        )
        return specs

    spec_sets = [
        with_mech(policer=PolicerSpec("c2", 0.25)),
        with_mech(shaper=ShaperSpec("c2", 0.3)),
        with_mech(aqm=AqmSpec("c2")),
        with_mech(weighted=WeightedShaperSpec("c2", 0.3)),
        dict(base),
    ]
    seeds = [3, 4, 5, 6, 7]
    batched = FluidBatchNetwork(
        topo.network, topo.classes, spec_sets, wl, seeds
    ).run(6.0, warmup_seconds=1.0)
    for b, (specs, seed) in enumerate(zip(spec_sets, seeds)):
        single = FluidNetwork(
            topo.network, topo.classes, specs, wl, seed=seed
        ).run(duration_seconds=6.0, warmup_seconds=1.0)
        _assert_results_identical(single, batched[b], label=f"mech b={b}")


def test_heterogeneous_durations_active_mask():
    """Worlds retire at their own limits; survivors keep going."""
    net = star_network(3)
    classes = two_classes(net, ["p1"])
    wl = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=4.0, mean_gap_seconds=1.0),)
            * 2,
            rtt_seconds=0.04,
        )
        for pid in net.path_ids
    }
    specs = {
        "hub": FluidLinkSpec(
            capacity_mbps=40.0,
            buffer_rtt_seconds=0.1,
            policer=PolicerSpec("c2", 0.3),
        )
    }
    spec_sets = [specs, specs, specs]
    seeds = [11, 12, 13]
    durations = [2.0, 5.0, 3.0]
    batched = run_batch(
        net, classes, spec_sets, wl, seeds, durations, warmup_seconds=0.5
    )
    for b in range(3):
        assert batched[b].measurements.num_intervals == int(
            round(durations[b] / INTERVAL)
        )
        single = FluidNetwork(
            net, classes, spec_sets[b], wl, seed=seeds[b]
        ).run(duration_seconds=durations[b], warmup_seconds=0.5)
        _assert_results_identical(single, batched[b], label=f"dur b={b}")


def test_session_chunks_after_limit_are_none():
    net = star_network(2)
    classes = two_classes(net, ["p1"])
    wl = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=2.0),), rtt_seconds=0.04
        )
        for pid in net.path_ids
    }
    sim = FluidBatchNetwork(
        net, classes, [{}, {}], wl, [1, 2]
    )
    sess = sim.session(interval_limits=[5, 12])
    first = sess.advance(5)
    assert all(c is not None and c.num_intervals == 5 for c in first)
    second = sess.advance(7)
    assert second[0] is None
    assert second[1] is not None and second[1].num_intervals == 7
    assert sess.scenario_intervals_done(0) == 5
    assert sess.scenario_intervals_done(1) == 12
    with pytest.raises(EmulationError):
        sess.advance(1)


class TestValidation:
    def _net(self):
        net = star_network(2)
        classes = two_classes(net, ["p1"])
        wl = {
            pid: PathWorkload(
                slots=(FlowSlotSpec(),), rtt_seconds=0.05
            )
            for pid in net.path_ids
        }
        return net, classes, wl

    def test_seed_count_mismatch(self):
        net, classes, wl = self._net()
        with pytest.raises(ConfigurationError):
            FluidBatchNetwork(net, classes, [{}, {}], wl, [1])

    def test_empty_batch(self):
        net, classes, wl = self._net()
        with pytest.raises(ConfigurationError):
            FluidBatchNetwork(net, classes, [], wl, [])

    def test_bad_duration_vector(self):
        net, classes, wl = self._net()
        sim = FluidBatchNetwork(net, classes, [{}, {}], wl, [1, 2])
        with pytest.raises(ConfigurationError):
            sim.run([1.0, 2.0, 3.0])

    def test_unknown_link_rejected_per_scenario(self):
        net, classes, wl = self._net()
        with pytest.raises(ConfigurationError):
            FluidBatchNetwork(
                net,
                classes,
                [{}, {"nope": FluidLinkSpec()}],
                wl,
                [1, 2],
            )

    def test_run_batch_classmethod(self):
        net, classes, wl = self._net()
        results = FluidNetwork.run_batch(
            net, classes, [{}, {}], wl, [1, 2], 1.0
        )
        assert len(results) == 2
        single = FluidNetwork(net, classes, {}, wl, seed=2).run(
            duration_seconds=1.0
        )
        _assert_results_identical(single, results[1])
