"""Tests for the fluid emulation engine.

These use short runs on the dumbbell; they check structural and
qualitative properties (conservation, differentiation direction,
determinism), not absolute performance numbers.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, EmulationError
from repro.fluid.engine import FluidNetwork
from repro.fluid.params import (
    FlowSlotSpec,
    FluidLinkSpec,
    PathWorkload,
    PolicerSpec,
    ShaperSpec,
)
from repro.measurement.normalize import path_congestion_probability
from repro.topology.dumbbell import build_dumbbell


def _run(mechanism=None, rate=0.3, seed=7, duration=40.0, fpp=10):
    topo = build_dumbbell(mechanism=mechanism, rate_fraction=rate)
    wl = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=10.0, mean_gap_seconds=2.0),)
            * fpp,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }
    sim = FluidNetwork(
        topo.network, topo.classes, topo.link_specs, wl, seed=seed
    )
    return sim.run(duration_seconds=duration, warmup_seconds=5.0)


class TestValidation:
    def test_workloads_required(self):
        topo = build_dumbbell()
        with pytest.raises(ConfigurationError):
            FluidNetwork(topo.network, topo.classes, topo.link_specs)

    def test_missing_path_workload(self):
        topo = build_dumbbell()
        with pytest.raises(ConfigurationError):
            FluidNetwork(
                topo.network,
                topo.classes,
                topo.link_specs,
                {"p1": PathWorkload()},
            )

    def test_unknown_link_spec(self):
        topo = build_dumbbell()
        specs = dict(topo.link_specs)
        specs["l99"] = FluidLinkSpec()
        wl = {pid: PathWorkload() for pid in topo.network.path_ids}
        with pytest.raises(ConfigurationError):
            FluidNetwork(topo.network, topo.classes, specs, wl)

    def test_unknown_target_class(self):
        topo = build_dumbbell()
        specs = dict(topo.link_specs)
        specs["l5"] = FluidLinkSpec(policer=PolicerSpec("c9", 0.3))
        wl = {pid: PathWorkload() for pid in topo.network.path_ids}
        with pytest.raises(ConfigurationError):
            FluidNetwork(topo.network, topo.classes, specs, wl)

    def test_dt_must_divide_interval(self):
        topo = build_dumbbell()
        wl = {pid: PathWorkload() for pid in topo.network.path_ids}
        sim = FluidNetwork(topo.network, topo.classes, topo.link_specs, wl)
        with pytest.raises(EmulationError):
            sim.run(duration_seconds=1.0, dt=0.03, interval_seconds=0.1)

    def test_duration_positive(self):
        topo = build_dumbbell()
        wl = {pid: PathWorkload() for pid in topo.network.path_ids}
        sim = FluidNetwork(topo.network, topo.classes, topo.link_specs, wl)
        with pytest.raises(EmulationError):
            sim.run(duration_seconds=0.0)


class TestStructure:
    def test_result_shapes(self):
        res = _run(duration=20.0)
        assert res.measurements.num_intervals == 200
        for lid, occ in res.queue_occupancy.items():
            assert occ.shape == (200,)
        assert set(res.flows_completed) == {"p1", "p2", "p3", "p4"}

    def test_losses_never_exceed_sent(self):
        res = _run(duration=20.0)
        for pid in ("p1", "p2", "p3", "p4"):
            rec = res.measurements.record(pid)
            assert (rec.lost <= rec.sent).all()

    def test_drops_never_exceed_arrivals(self):
        res = _run(mechanism="policing", duration=20.0)
        for lid in res.link_class_arrivals:
            for cn in ("c1", "c2"):
                arr = res.link_class_arrivals[lid][cn]
                drp = res.link_class_drops[lid][cn]
                assert (drp <= arr + 1e-6).all()

    def test_determinism(self):
        a = _run(seed=11, duration=10.0)
        b = _run(seed=11, duration=10.0)
        for pid in ("p1", "p3"):
            np.testing.assert_array_equal(
                a.measurements.record(pid).sent,
                b.measurements.record(pid).sent,
            )
            np.testing.assert_array_equal(
                a.measurements.record(pid).lost,
                b.measurements.record(pid).lost,
            )

    def test_seed_changes_outcome(self):
        a = _run(seed=1, duration=10.0)
        b = _run(seed=2, duration=10.0)
        assert (
            a.measurements.record("p1").sent
            != b.measurements.record("p1").sent
        ).any()

    def test_unmeasured_paths_excluded(self):
        topo = build_dumbbell()
        wl = {
            pid: PathWorkload(measured=(pid != "p4"))
            for pid in topo.network.path_ids
        }
        sim = FluidNetwork(
            topo.network, topo.classes, topo.link_specs, wl, seed=0
        )
        res = sim.run(duration_seconds=5.0)
        assert "p4" not in res.measurements.path_ids


class TestDifferentiation:
    def test_policing_hits_target_class(self):
        res = _run(mechanism="policing", rate=0.3, duration=40.0)
        c1 = np.mean(
            [
                path_congestion_probability(res.measurements, p)
                for p in ("p1", "p2")
            ]
        )
        c2 = np.mean(
            [
                path_congestion_probability(res.measurements, p)
                for p in ("p3", "p4")
            ]
        )
        assert c2 > 2 * c1

    def test_policer_ground_truth_is_classed(self):
        res = _run(mechanism="policing", rate=0.3, duration=40.0)
        p_c1 = res.link_congestion_probability("l5", "c1")
        p_c2 = res.link_congestion_probability("l5", "c2")
        assert p_c2 > p_c1

    def test_neutral_link_treats_classes_alike(self):
        res = _run(mechanism=None, duration=40.0)
        p_c1 = res.link_congestion_probability("l5", "c1")
        p_c2 = res.link_congestion_probability("l5", "c2")
        assert abs(p_c1 - p_c2) < 0.1

    def test_shaping_buffers_in_dedicated_queue(self):
        res = _run(mechanism="shaping", rate=0.3, duration=40.0)
        # Shaper queues contribute to occupancy of l5.
        assert res.queue_occupancy["l5"].max() > 0
