"""Seeded-equivalence regression: vectorized engine vs scalar goldens.

``golden/scalar_goldens.json`` holds per-path ``(sent, lost)`` totals
and congestion probabilities captured from the pre-vectorization
scalar engine (frozen as :mod:`repro.fluid.engine_scalar`) on three
locked dumbbell configurations — neutral, policing, shaping. The
vectorized engine consumes its RNG stream in a different order, so it
realizes a *different sample path* of the same stochastic model;
the comparison is therefore tolerance-based, with tolerances
calibrated against the scalar engine's own seed-to-seed spread
(roughly ±0.06 absolute on congestion probabilities, up to ~2.5× on
per-path volumes under the heavy-tailed Pareto sizes).

What must hold for every scenario:

* per-path congestion probabilities within the seed-noise band of
  the golden values;
* per-path traffic volumes at the same scale;
* the differentiation structure: the policed/shaped class worse by a
  wide margin under differentiation, the classes alike when neutral.
"""

import json

import numpy as np
import pytest

from golden_config import GOLDEN_PATH, SCENARIOS, run_scenario
from repro.fluid.engine import FluidNetwork

#: Absolute tolerance on congestion probabilities vs the golden
#: capture — the scalar engine's own across-seed spread is ~0.06;
#: 0.15 adds headroom without admitting regime changes (the smallest
#: asserted structural gap below is ~2x wider).
P_CONGESTED_TOL = 0.15

#: Per-path sent-volume ratio band vs the golden capture (Pareto flow
#: sizes make single-path volumes vary up to ~2.5x across seeds).
SENT_RATIO_BAND = (1 / 3.0, 3.0)

#: Class-aggregate volumes are steadier; bound them tighter.
CLASS_SENT_RATIO_BAND = (1 / 2.5, 2.5)


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def vectorized():
    return {sc: run_scenario(FluidNetwork, sc) for sc in SCENARIOS}


class TestGoldenEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_path_congestion_within_tolerance(
        self, goldens, vectorized, scenario
    ):
        for pid, gold in goldens[scenario]["paths"].items():
            got = vectorized[scenario]["paths"][pid]
            assert got["p_congested"] == pytest.approx(
                gold["p_congested"], abs=P_CONGESTED_TOL
            ), (scenario, pid)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_sent_volumes_at_same_scale(
        self, goldens, vectorized, scenario
    ):
        lo, hi = SENT_RATIO_BAND
        for pid, gold in goldens[scenario]["paths"].items():
            got = vectorized[scenario]["paths"][pid]
            ratio = got["sent"] / max(gold["sent"], 1)
            assert lo < ratio < hi, (scenario, pid, ratio)
        lo, hi = CLASS_SENT_RATIO_BAND
        for pids in (("p1", "p2"), ("p3", "p4")):
            gold = sum(goldens[scenario]["paths"][p]["sent"] for p in pids)
            got = sum(
                vectorized[scenario]["paths"][p]["sent"] for p in pids
            )
            ratio = got / max(gold, 1)
            assert lo < ratio < hi, (scenario, pids, ratio)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_losses_consistent_with_sends(self, vectorized, scenario):
        for pid, got in vectorized[scenario]["paths"].items():
            assert 0 <= got["lost"] <= got["sent"], (scenario, pid)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_link_ground_truth_within_tolerance(
        self, goldens, vectorized, scenario
    ):
        for cname, gold in goldens[scenario]["l5_class_congestion"].items():
            got = vectorized[scenario]["l5_class_congestion"][cname]
            assert got == pytest.approx(gold, abs=P_CONGESTED_TOL), (
                scenario,
                cname,
            )

    def test_neutral_treats_classes_alike(self, vectorized):
        c = vectorized["neutral"]["l5_class_congestion"]
        assert abs(c["c1"] - c["c2"]) < 0.05

    @pytest.mark.parametrize("scenario", ["policing", "shaping"])
    def test_differentiation_structure_preserved(
        self, vectorized, scenario
    ):
        summary = vectorized[scenario]
        c = summary["l5_class_congestion"]
        assert c["c2"] > 2 * c["c1"], scenario
        c1_mean = np.mean(
            [summary["paths"][p]["p_congested"] for p in ("p1", "p2")]
        )
        c2_mean = np.mean(
            [summary["paths"][p]["p_congested"] for p in ("p3", "p4")]
        )
        assert c2_mean > 2 * c1_mean, scenario
