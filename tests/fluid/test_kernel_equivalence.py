"""Kernel-backend equivalence suite (ISSUE 7's test satellite).

The fused step kernels (:mod:`repro.fluid.kernels`) must emulate the
*same physics* as the legacy numpy step loop. This suite pins that
three ways:

* **(Near-)bit-identity where the arithmetic allows it.** The
  dumbbell golden configurations route every reduction the kernels
  touch through sums with at most two nonzero contributions (queues
  build only on the shared ``l5``; each mechanism targets a two-path
  class), where sequential scalar accumulation and numpy's
  blocked/BLAS reductions agree exactly — whole-run summaries compare
  at the razor-thin :func:`assert_summaries_close` band, whose only
  slack covers pow's last-ulp rounding. The per-slot TCP kernel is
  elementwise arithmetic only, so it is compared bitwise against
  :meth:`TcpArrayState.advance` on randomized states (cube/cube-root
  outputs at ulp tolerance).
* **Calibrated tolerances where it does not.** The packet engine's
  Lindley serialization runs as a recurrence in the kernel vs a
  ``cumsum``/``maximum.accumulate`` closed form in numpy — departure
  times are compared at fp tolerance while the integer-exact parts
  (admission masks, popcounts) are compared exactly.
* **Verdict invariance.** The quantities inference consumes — which
  paths/classes count as congested, and the differentiation structure
  between classes — must be identical across backends regardless of
  fp-level drift.

The fused side runs as the ``numba`` backend where numba is
importable and otherwise as the ``python`` backend, which executes
the *same* kernel function objects uncompiled — so this suite
validates kernel semantics on every machine.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from golden_config import SCENARIOS, SEED, run_scenario, scenario_inputs
from repro.core.network import Network, Path
from repro.exceptions import ConfigurationError
from repro.fluid import kernels
from repro.fluid.engine import (
    ENGINE_VERSION,
    KERNEL_ENGINE_VERSION,
    FluidNetwork,
    engine_version,
)
from repro.fluid.tcp import TcpArrayState
from repro.streaming.window import SlidingWindowStats

#: The fused backend this machine can execute — compiled where numba
#: is importable, the uncompiled kernel functions otherwise.
FUSED = "numba" if kernels.NUMBA_AVAILABLE else "python"

#: Congestion-probability threshold defining the verdict pattern.
VERDICT_THRESHOLD = 0.01

_SETTINGS = settings(max_examples=25, deadline=None, derandomize=True)


def _run_summary(scenario, backend, duration=12.0, warmup=2.0):
    """A short golden-configuration run under one backend."""
    topo, workloads = scenario_inputs(scenario)
    with kernels.use_backend(backend):
        sim = FluidNetwork(
            topo.network,
            topo.classes,
            topo.link_specs,
            workloads,
            seed=SEED,
        )
        result = sim.run(duration_seconds=duration, warmup_seconds=warmup)
    return summarize_with_verdict(result)


def summarize_with_verdict(result):
    """Golden-style summary plus the verdict-level pattern."""
    from golden_config import summarize

    out = summarize(result)
    out["verdict"] = {
        pid: rec["p_congested"] > VERDICT_THRESHOLD
        for pid, rec in out["paths"].items()
    }
    out["l5_verdict"] = {
        c: p > VERDICT_THRESHOLD
        for c, p in out["l5_class_congestion"].items()
    }
    return out


def assert_summaries_close(actual, expected):
    """Fused-vs-numpy whole-run comparison at its calibrated bound.

    Observed bitwise-identical on this machine (dumbbell reductions
    have ≤2 nonzero terms), but the CUBIC epoch constant routes
    through ``**`` whose last ulp may round differently between
    numpy's vectorized pow and the kernels' scalar pow — an ulp that
    shows up, after ``rint``, as at most a packet or two. Anything
    beyond that band is a kernel semantics bug (the development
    ``any_loss`` bug sat at 100% on ``lost``), so the band is kept
    razor thin; the verdict pattern must be *identical*.
    """
    assert actual["paths"].keys() == expected["paths"].keys()
    for pid, exp in expected["paths"].items():
        act = actual["paths"][pid]
        assert abs(act["sent"] - exp["sent"]) <= 2, pid
        assert abs(act["lost"] - exp["lost"]) <= 2, pid
        assert act["p_congested"] == pytest.approx(
            exp["p_congested"], abs=1e-6
        ), pid
    for c, p in expected["l5_class_congestion"].items():
        assert actual["l5_class_congestion"][c] == pytest.approx(
            p, abs=1e-6
        ), c
    assert actual["verdict"] == expected["verdict"]
    assert actual["l5_verdict"] == expected["l5_verdict"]


# ----------------------------------------------------------------------
# Backend selection API
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            kernels.set_backend("fortran")

    @pytest.mark.skipif(
        kernels.NUMBA_AVAILABLE, reason="numba is importable here"
    )
    def test_explicit_numba_without_numba_rejected(self):
        with pytest.raises(ConfigurationError, match="numba"):
            kernels.set_backend("numba")

    def test_use_backend_restores_previous(self):
        before = kernels.active_backend()
        with kernels.use_backend("python"):
            assert kernels.active_backend() == "python"
            assert kernels.step_kernels_enabled()
        assert kernels.active_backend() == before

    def test_numpy_backend_disables_kernels(self):
        with kernels.use_backend("numpy"):
            assert not kernels.step_kernels_enabled()
            with pytest.raises(ConfigurationError, match="numpy"):
                kernels.greedy_admission(
                    np.zeros(1, dtype=np.int64),
                    np.zeros(1, dtype=np.bool_),
                )

    def test_kernel_info_reports_backend(self):
        with kernels.use_backend("python"):
            info = kernels.kernel_info()
        assert info["backend"] == "python"
        assert info["compiled"] is False
        assert info["numba_available"] == kernels.NUMBA_AVAILABLE
        with kernels.use_backend(FUSED):
            assert kernels.kernel_info()["compiled"] == (FUSED == "numba")

    def test_engine_version_tracks_backend(self):
        with kernels.use_backend("numpy"):
            assert engine_version() == ENGINE_VERSION
        with kernels.use_backend("python"):
            assert engine_version() == KERNEL_ENGINE_VERSION
        assert ENGINE_VERSION != KERNEL_ENGINE_VERSION


# ----------------------------------------------------------------------
# Whole-run equivalence on the golden configurations
# ----------------------------------------------------------------------


class TestFluidBackendEquivalence:
    """Fused vs numpy backend on the three golden configurations.

    On the dumbbell every cross-backend reduction has ≤2 nonzero
    contributions (see module docstring), so the comparison runs at
    the razor-thin :func:`assert_summaries_close` band — any real
    mismatch is a kernel semantics bug, not fp noise.
    """

    @pytest.fixture(scope="class")
    def summaries(self):
        return {
            sc: (
                _run_summary(sc, "numpy"),
                _run_summary(sc, FUSED),
            )
            for sc in SCENARIOS
        }

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_summaries_identical(self, summaries, scenario):
        ref, fused = summaries[scenario]
        assert_summaries_close(fused, ref)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_verdicts_invariant(self, summaries, scenario):
        ref, fused = summaries[scenario]
        assert fused["verdict"] == ref["verdict"]
        assert fused["l5_verdict"] == ref["l5_verdict"]


@_SETTINGS
@given(
    mechanism=st.sampled_from([None, "policing", "shaping"]),
    rate_fraction=st.floats(0.2, 0.6),
    seed=st.integers(0, 2**31),
    mean_size=st.floats(2.0, 20.0),
)
def test_random_dumbbell_backends_agree(
    mechanism, rate_fraction, seed, mean_size
):
    """Random dumbbell configurations: fused matches numpy at the
    calibrated band, with an identical verdict pattern (dumbbell
    reductions have ≤2 nonzero terms — see module docstring)."""
    from repro.fluid.params import FlowSlotSpec, PathWorkload
    from repro.topology.dumbbell import build_dumbbell

    topo = build_dumbbell(mechanism=mechanism, rate_fraction=rate_fraction)
    workloads = {
        pid: PathWorkload(
            slots=(
                FlowSlotSpec(
                    mean_size_mb=mean_size, mean_gap_seconds=2.0
                ),
            )
            * 4,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }

    def run(backend):
        with kernels.use_backend(backend):
            sim = FluidNetwork(
                topo.network,
                topo.classes,
                topo.link_specs,
                workloads,
                seed=seed,
            )
            return summarize_with_verdict(
                sim.run(duration_seconds=6.0, warmup_seconds=1.0)
            )

    assert_summaries_close(run(FUSED), run("numpy"))


# ----------------------------------------------------------------------
# REPRO_KERNEL env fallback: bit-identity with the pinned numpy path
# ----------------------------------------------------------------------


_SUBPROCESS_SNIPPET = """\
import json, sys
sys.path.insert(0, {test_dir!r})
from golden_config import SEED, scenario_inputs, summarize
from repro.fluid import kernels
from repro.fluid.engine import FluidNetwork, engine_version

assert kernels.active_backend() == {backend!r}, kernels.kernel_info()
topo, workloads = scenario_inputs({scenario!r})
sim = FluidNetwork(
    topo.network, topo.classes, topo.link_specs, workloads, seed=SEED
)
result = sim.run(duration_seconds=8.0, warmup_seconds=1.0)
print(json.dumps({{
    "summary": summarize(result),
    "engine_version": engine_version(),
    "info": kernels.kernel_info(),
}}))
"""


def _run_in_subprocess(backend, scenario="policing"):
    import repro

    env = dict(os.environ)
    env["REPRO_KERNEL"] = backend
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    snippet = _SUBPROCESS_SNIPPET.format(
        test_dir=os.path.dirname(os.path.abspath(__file__)),
        backend=backend,
        scenario=scenario,
    )
    out = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


class TestEnvFallback:
    def test_forced_numpy_is_bit_identical(self):
        """``REPRO_KERNEL=numpy`` selects the legacy step loop: a
        subprocess forced to it reproduces the in-process numpy run
        bit-for-bit (the goldens' arithmetic, untouched)."""
        sub = _run_in_subprocess("numpy")
        assert sub["info"]["backend"] == "numpy"
        assert sub["info"]["env_override"] == "numpy"
        assert sub["engine_version"] == ENGINE_VERSION

        topo, workloads = scenario_inputs("policing")
        sim = FluidNetwork(
            topo.network,
            topo.classes,
            topo.link_specs,
            workloads,
            seed=SEED,
        )
        from golden_config import summarize

        local = summarize(
            sim.run(duration_seconds=8.0, warmup_seconds=1.0)
        )
        assert sub["summary"] == local

    def test_forced_python_reports_kernel_version(self):
        sub = _run_in_subprocess("python")
        assert sub["info"]["backend"] == "python"
        assert sub["info"]["compiled"] is False
        assert sub["engine_version"] == KERNEL_ENGINE_VERSION


# ----------------------------------------------------------------------
# Per-slot TCP kernel vs TcpArrayState.advance (bitwise)
# ----------------------------------------------------------------------


@st.composite
def tcp_step_case(draw):
    """A randomized mid-flight TCP state plus one step's inputs."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    n = draw(st.integers(1, 8))
    num_paths = draw(st.integers(1, 4))
    now = draw(st.floats(0.5, 10.0))

    is_cubic = rng.random(n) < 0.5
    state = {
        "is_cubic": is_cubic,
        "cwnd": rng.uniform(1.0, 100.0, n),
        "ssthresh": rng.uniform(2.0, 120.0, n),
        "last_loss_time": np.where(
            rng.random(n) < 0.5, -np.inf, now - rng.uniform(0.0, 0.3, n)
        ),
        "w_max": np.where(
            rng.random(n) < 0.3, 0.0, rng.uniform(1.0, 100.0, n)
        ),
        "epoch_start": np.where(
            rng.random(n) < 0.4, np.nan, now - rng.uniform(0.0, 5.0, n)
        ),
        "epoch_k": rng.uniform(0.0, 3.0, n),
        "pending_due": np.where(
            rng.random(n) < 0.5,
            np.inf,
            now + rng.uniform(-0.1, 0.2, n),
        ),
    }
    pend = state["pending_due"] < np.inf
    state["pending_lost"] = np.where(pend, rng.uniform(0.0, 20.0, n), 0.0)
    state["pending_sent"] = np.where(pend, rng.uniform(0.0, 40.0, n), 0.0)

    any_loss = draw(st.booleans())
    any_burst = any_loss and draw(st.booleans())
    inputs = {
        "now": now,
        "any_loss": any_loss,
        "any_burst": any_burst,
        "spath": rng.integers(0, num_paths, n),
        "send": np.where(
            rng.random(n) < 0.25, 0.0, rng.uniform(0.05, 50.0, n)
        ),
        "rtt_slot": rng.uniform(1e-4, 0.2, n),
        "path_smooth": (
            rng.uniform(0.0, 0.9, num_paths)
            if any_loss
            else np.zeros(num_paths)
        ),
        "slot_burst": (
            np.where(rng.random(n) < 0.5, 0.0, rng.uniform(0.0, 10.0, n))
            if any_burst
            else np.zeros(n)
        ),
        "remaining": np.where(
            rng.random(n) < 0.3,
            rng.uniform(0.0, 1e-9, n),
            rng.uniform(0.5, 100.0, n),
        ),
        "measuring": draw(st.booleans()),
        "arrivals": rng.uniform(0.0, 5.0, (3, num_paths)),
    }
    return state, inputs


def _make_tcp(state):
    tcp = TcpArrayState(state["is_cubic"])
    for field in (
        "cwnd",
        "ssthresh",
        "last_loss_time",
        "w_max",
        "epoch_start",
        "epoch_k",
        "pending_due",
        "pending_lost",
        "pending_sent",
    ):
        getattr(tcp, field)[:] = state[field]
    tcp._num_pending = int(np.count_nonzero(tcp.pending_due < np.inf))
    return tcp


@_SETTINGS
@given(tcp_step_case())
def test_tcp_post_kernel_matches_advance(case):
    """``fluid_step_post`` is a scalar port of the engine's step-6
    block (loss attribution + :meth:`TcpArrayState.advance` +
    completion detection). Elementwise arithmetic only — every state
    array must come out bitwise identical."""
    state, inp = case
    n = len(state["cwnd"])
    now, any_loss, any_burst = (
        inp["now"],
        inp["any_loss"],
        inp["any_burst"],
    )
    send, rtt_slot, spath = inp["send"], inp["rtt_slot"], inp["spath"]

    # --- reference: the engine's numpy step-6 block, verbatim.
    ref = _make_tcp(state)
    ref_remaining = inp["remaining"].copy()
    ref_sent_acc = np.zeros(n)
    ref_lost_acc = np.zeros(n)
    ref_link_acc = np.zeros_like(inp["arrivals"])
    if any_loss:
        lost = send * inp["path_smooth"][spath]
        if any_burst:
            lost += inp["slot_burst"]
        np.minimum(lost, send, out=lost)
        delivered = send - lost
    else:
        lost = None
        delivered = send
    sending = send > 0.0
    ref.advance(now, send, sending, lost, delivered, rtt_slot)
    ref_remaining -= delivered
    ref_completed = sending & (ref_remaining <= 1e-9)
    if inp["measuring"]:
        ref_sent_acc += send
        if lost is not None:
            ref_lost_acc += lost
        ref_link_acc += inp["arrivals"]

    # --- kernel under the fused backend.
    ker = _make_tcp(state)
    ker_remaining = inp["remaining"].copy()
    ker_sent_acc = np.zeros(n)
    ker_lost_acc = np.zeros(n)
    ker_link_acc = np.zeros_like(inp["arrivals"])
    completed = np.zeros(n, dtype=np.bool_)
    with kernels.use_backend(FUSED):
        n_comp = kernels.fluid_step_post(
            now,
            inp["measuring"],
            any_loss,
            any_burst,
            spath,
            send,
            rtt_slot,
            inp["path_smooth"],
            inp["slot_burst"],
            ker_remaining,
            ker.is_cubic,
            ker.cwnd,
            ker.ssthresh,
            ker.last_loss_time,
            ker.w_max,
            ker.epoch_start,
            ker.epoch_k,
            ker.pending_due,
            ker.pending_lost,
            ker.pending_sent,
            completed,
            ker_sent_acc,
            ker_lost_acc,
            inp["arrivals"],
            ker_link_acc,
        )

    # cwnd and epoch_k pass through ``**`` (the CUBIC cube/cube-root),
    # where numpy's vectorized pow and the kernels' scalar pow may
    # round the last ulp differently — those two compare at ulp
    # tolerance, everything else bitwise.
    for field in (
        "ssthresh",
        "last_loss_time",
        "w_max",
        "epoch_start",
        "pending_due",
        "pending_lost",
        "pending_sent",
    ):
        np.testing.assert_array_equal(
            getattr(ker, field), getattr(ref, field), err_msg=field
        )
    for field in ("cwnd", "epoch_k"):
        np.testing.assert_allclose(
            getattr(ker, field),
            getattr(ref, field),
            rtol=1e-13,
            atol=0.0,
            err_msg=field,
        )
    np.testing.assert_array_equal(ker_remaining, ref_remaining)
    np.testing.assert_array_equal(completed, ref_completed)
    assert n_comp == int(np.count_nonzero(ref_completed))
    np.testing.assert_array_equal(ker_sent_acc, ref_sent_acc)
    np.testing.assert_array_equal(ker_lost_acc, ref_lost_acc)
    np.testing.assert_array_equal(ker_link_acc, ref_link_acc)


# ----------------------------------------------------------------------
# Packet-engine kernels
# ----------------------------------------------------------------------


@_SETTINGS
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(0, 200),
    slope=st.floats(0.0, 3.0),
)
def test_greedy_admission_backends_identical(seed, n, slope):
    """The counting-loop kernel is integer-exact: bitwise-identical
    masks to the closed-form ``cummin`` route for any nondecreasing
    capacity sequence."""
    from repro.emulator.core import greedy_admission

    rng = np.random.default_rng(seed)
    caps = np.floor(
        np.cumsum(rng.uniform(0.0, slope, n))
    ).astype(np.int64)
    with kernels.use_backend("numpy"):
        ref = greedy_admission(caps)
    with kernels.use_backend(FUSED):
        fused = greedy_admission(caps)
    np.testing.assert_array_equal(fused, ref)


@_SETTINGS
@given(
    seed=st.integers(0, 2**31),
    n=st.integers(1, 150),
    rate=st.floats(10.0, 5000.0),
    capacity=st.integers(1, 80),
    busy_ahead=st.booleans(),
)
def test_serve_fifo_backends_equivalent(
    seed, n, rate, capacity, busy_ahead
):
    """Kernel Lindley recurrence vs the numpy closed form: admission
    is integer-exact (identical masks); departure times accumulate in
    a different association, so they are compared at fp tolerance."""
    from repro.emulator.core import _serve_fifo

    rng = np.random.default_rng(seed)
    arr = np.sort(rng.uniform(0.0, 0.05, n))
    busy = float(arr[0] + (0.01 if busy_ahead else -0.01))
    with kernels.use_backend("numpy"):
        ref_admit, ref_dep, ref_busy = _serve_fifo(
            arr, rate, busy, capacity
        )
    with kernels.use_backend(FUSED):
        k_admit, k_dep, k_busy = _serve_fifo(arr, rate, busy, capacity)

    ref_mask = (
        np.ones(n, dtype=bool) if ref_admit is None else ref_admit
    )
    k_mask = np.ones(n, dtype=bool) if k_admit is None else k_admit
    np.testing.assert_array_equal(k_mask, ref_mask)
    np.testing.assert_allclose(k_dep, ref_dep, rtol=1e-9, atol=1e-12)
    assert np.isclose(k_busy, ref_busy, rtol=1e-9, atol=1e-12)
    # The serialization order invariants hold under both backends.
    assert np.all(np.diff(k_dep) >= -1e-12)
    assert k_dep.shape[0] == int(np.count_nonzero(k_mask))


# ----------------------------------------------------------------------
# Streaming popcount kernel
# ----------------------------------------------------------------------


@_SETTINGS
@given(
    seed=st.integers(0, 2**31),
    num_rows=st.integers(2, 6),
    total=st.integers(1, 200),
)
def test_pair_popcount_kernel_exact(seed, num_rows, total):
    """Direct kernel check: masked AND-popcounts over bit-packed rows
    equal the unpacked boolean reference for arbitrary spans."""
    from repro.measurement.normalize import _POPCOUNT

    rng = np.random.default_rng(seed)
    status = rng.random((num_rows, total)) < 0.5
    packed = np.packbits(status, axis=1)
    pairs = [
        (a, b)
        for a in range(num_rows)
        for b in range(a + 1, num_rows)
    ]
    rows_a = np.array([a for a, _ in pairs], dtype=np.intp)
    rows_b = np.array([b for _, b in pairs], dtype=np.intp)
    lo = int(rng.integers(0, total))
    hi = int(rng.integers(lo + 1, total + 1))
    b0, head = divmod(lo, 8)
    b1 = (hi + 7) // 8
    tail = (8 - hi % 8) % 8
    counts = np.zeros(len(pairs), dtype=np.int64)
    with kernels.use_backend(FUSED):
        kernels.pair_popcount_span(
            packed,
            rows_a,
            rows_b,
            b0,
            b1,
            0xFF >> head if head else 0xFF,
            (0xFF << tail) & 0xFF if tail else 0xFF,
            _POPCOUNT,
            counts,
        )
    expected = np.array(
        [
            int(np.count_nonzero(status[a, lo:hi] & status[b, lo:hi]))
            for a, b in pairs
        ],
        dtype=np.int64,
    )
    np.testing.assert_array_equal(counts, expected)


def test_sliding_window_sparse_route_backend_invariant(monkeypatch):
    """The sparse (bit-packed) pair-count route produces identical
    window costs under both backends — popcounts are integer-exact."""
    import repro.streaming.window as window_mod

    # Push every stream onto the packed route (normally only ≥5k-path
    # streams take it — DESIGN.md S20).
    monkeypatch.setattr(window_mod, "_GRAM_MAX_PATHS", 0)

    def star(spokes):
        links = ["hub"] + [f"a{i}" for i in range(spokes)]
        paths = [Path(f"p{i}", (f"a{i}", "hub")) for i in range(spokes)]
        return Network(links, paths)

    rng = np.random.default_rng(11)
    spokes, total = 5, 70
    sent = rng.integers(1, 60, size=(spokes, total))
    lost = rng.binomial(sent, 0.08)
    path_ids = tuple(f"p{i}" for i in range(spokes))

    def costs(backend):
        with kernels.use_backend(backend):
            stats = SlidingWindowStats(star(spokes))
            stats.append_arrays(sent, lost, path_ids)
            assert not stats._use_gram
            return stats.window_costs(10, 60)

    ref_single, ref_pair = costs("numpy")
    k_single, k_pair = costs(FUSED)
    np.testing.assert_array_equal(k_single, ref_single)
    np.testing.assert_array_equal(k_pair, ref_pair)


@_SETTINGS
@given(
    seed=st.integers(0, 2**31),
    num_rows=st.integers(2, 8),
    total=st.integers(1, 200),
)
def test_pair_popcount_rows_kernel_exact(seed, num_rows, total):
    """Full-row packed-AND popcounts (the parallel executor's
    normalization leg) equal the unpacked boolean reference."""
    from repro.measurement.normalize import _POPCOUNT

    rng = np.random.default_rng(seed)
    status = rng.random((num_rows, total)) < 0.5
    packed = np.packbits(status, axis=1)
    pairs = [
        (a, b)
        for a in range(num_rows)
        for b in range(a + 1, num_rows)
    ]
    rows_a = np.array([a for a, _ in pairs], dtype=np.intp)
    rows_b = np.array([b for _, b in pairs], dtype=np.intp)
    counts = np.zeros(len(pairs), dtype=np.int64)
    with kernels.use_backend(FUSED):
        kernels.pair_popcount_rows(
            packed, rows_a, rows_b, _POPCOUNT, counts
        )
    expected = np.array(
        [
            int(np.count_nonzero(status[a] & status[b]))
            for a, b in pairs
        ],
        dtype=np.int64,
    )
    np.testing.assert_array_equal(counts, expected)


def test_pair_joint_popcounts_backend_invariant():
    """normalize.pair_joint_popcounts takes the kernel route when
    step kernels are enabled and the numpy route otherwise — the
    counts are integer-exact either way."""
    from repro.measurement.normalize import pair_joint_popcounts

    rng = np.random.default_rng(23)
    status = rng.random((6, 130)) < 0.6
    packed = np.packbits(status, axis=1)
    rows_a = np.array([0, 1, 2, 3], dtype=np.intp)
    rows_b = np.array([4, 5, 3, 5], dtype=np.intp)
    with kernels.use_backend("numpy"):
        numpy_route = pair_joint_popcounts(packed, rows_a, rows_b)
    with kernels.use_backend(FUSED):
        kernel_route = pair_joint_popcounts(packed, rows_a, rows_b)
    np.testing.assert_array_equal(kernel_route, numpy_route)
    expected = [
        int(np.count_nonzero(status[a] & status[b]))
        for a, b in zip(rows_a, rows_b)
    ]
    np.testing.assert_array_equal(numpy_route, expected)
