"""Unit tests for fluid-emulator configuration and TCP models."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.fluid.params import (
    FlowSlotSpec,
    FluidLinkSpec,
    PathWorkload,
    PolicerSpec,
    ShaperSpec,
    mb_to_packets,
    mbps_to_pps,
    uniform_workload,
)
from repro.fluid.tcp import (
    CUBIC_BETA,
    INITIAL_WINDOW,
    MAX_WINDOW,
    MIN_WINDOW,
    TcpState,
)


class TestUnits:
    def test_mbps_to_pps(self):
        assert mbps_to_pps(12) == pytest.approx(1000.0)

    def test_mb_to_packets(self):
        assert mb_to_packets(12) == pytest.approx(1000.0)


class TestSpecs:
    def test_policer_validation(self):
        with pytest.raises(ConfigurationError):
            PolicerSpec("c2", 0.0)
        with pytest.raises(ConfigurationError):
            PolicerSpec("c2", 1.5)
        with pytest.raises(ConfigurationError):
            PolicerSpec("c2", 0.3, burst_seconds=0)

    def test_shaper_validation(self):
        with pytest.raises(ConfigurationError):
            ShaperSpec("c2", 1.0)  # complement class would get 0

    def test_link_cannot_police_and_shape(self):
        with pytest.raises(ConfigurationError):
            FluidLinkSpec(
                policer=PolicerSpec("c2", 0.3),
                shaper=ShaperSpec("c2", 0.3),
            )

    def test_link_derived_quantities(self):
        spec = FluidLinkSpec(capacity_mbps=12, buffer_rtt_seconds=0.1)
        assert spec.capacity_pps == pytest.approx(1000.0)
        assert spec.buffer_packets == pytest.approx(100.0)
        assert not spec.is_differentiating

    def test_flow_slot_validation(self):
        with pytest.raises(ConfigurationError):
            FlowSlotSpec(mean_size_mb=0)
        with pytest.raises(ConfigurationError):
            FlowSlotSpec(pareto_shape=0.9)
        FlowSlotSpec(pareto_shape=0)  # fixed-size: valid

    def test_workload_validation(self):
        with pytest.raises(ConfigurationError):
            PathWorkload(slots=())
        with pytest.raises(ConfigurationError):
            PathWorkload(congestion_control="bbr")

    def test_uniform_workload(self):
        wl = uniform_workload(["p1", "p2"], flows_per_path=3)
        assert set(wl) == {"p1", "p2"}
        assert len(wl["p1"].slots) == 3


class TestTcpNewReno:
    def test_slow_start_doubles(self):
        tcp = TcpState("newreno")
        w0 = tcp.cwnd
        tcp.on_delivered(0.0, w0, rtt=0.05)
        assert tcp.cwnd == pytest.approx(2 * w0)

    def test_halving_on_loss(self):
        tcp = TcpState("newreno")
        tcp.cwnd, tcp.ssthresh = 64.0, 32.0
        cut = tcp.on_loss(1.0, lost_packets=1.0, sent_packets=100.0, rtt=0.05)
        assert cut
        assert tcp.cwnd == pytest.approx(32.0)

    def test_loss_events_rate_limited_per_rtt(self):
        tcp = TcpState("newreno")
        tcp.cwnd, tcp.ssthresh = 64.0, 1.0
        assert tcp.on_loss(1.0, 1.0, 100.0, rtt=0.1)
        assert not tcp.on_loss(1.05, 1.0, 100.0, rtt=0.1)
        assert tcp.on_loss(1.2, 1.0, 100.0, rtt=0.1)

    def test_severe_loss_collapses_to_min_window(self):
        tcp = TcpState("newreno")
        tcp.cwnd, tcp.ssthresh = 64.0, 1.0
        tcp.on_loss(1.0, lost_packets=60.0, sent_packets=100.0, rtt=0.05)
        assert tcp.cwnd == MIN_WINDOW

    def test_congestion_avoidance_linear(self):
        tcp = TcpState("newreno")
        tcp.cwnd, tcp.ssthresh = 10.0, 5.0
        tcp.on_delivered(0.0, 10.0, rtt=0.05)
        assert tcp.cwnd == pytest.approx(11.0)

    def test_window_capped(self):
        tcp = TcpState("newreno")
        tcp.cwnd = MAX_WINDOW
        tcp.on_delivered(0.0, MAX_WINDOW, rtt=0.05)
        assert tcp.cwnd == MAX_WINDOW


class TestTcpCubic:
    def test_beta_reduction_on_loss(self):
        tcp = TcpState("cubic")
        tcp.cwnd, tcp.ssthresh = 100.0, 1.0
        tcp.on_loss(1.0, 1.0, 100.0, rtt=0.05)
        assert tcp.cwnd == pytest.approx(100.0 * CUBIC_BETA)
        assert tcp.w_max == pytest.approx(100.0)

    def test_concave_recovery_toward_wmax(self):
        tcp = TcpState("cubic")
        tcp.cwnd, tcp.ssthresh = 100.0, 1.0
        tcp.on_loss(0.0, 1.0, 100.0, rtt=0.05)
        w_after_cut = tcp.cwnd
        tcp.on_delivered(1.0, 10.0, rtt=0.05)
        assert tcp.cwnd > w_after_cut
        # Eventually exceeds w_max (convex probing).
        tcp.on_delivered(60.0, 10.0, rtt=0.05)
        assert tcp.cwnd > 100.0

    def test_invalid_algorithm(self):
        with pytest.raises(ConfigurationError):
            TcpState("reno2000")

    def test_reset_for_new_flow(self):
        tcp = TcpState("cubic")
        tcp.cwnd, tcp.w_max = 50.0, 80.0
        tcp.note_loss(0.0, 1.0, 10.0, 0.05)
        tcp.reset_for_new_flow()
        assert tcp.cwnd == INITIAL_WINDOW
        assert tcp.w_max == 0.0
        assert tcp.pending_due is None


class TestDelayedLossReaction:
    def test_pending_fires_after_rtt(self):
        tcp = TcpState("newreno")
        tcp.cwnd, tcp.ssthresh = 64.0, 1.0
        tcp.note_loss(1.0, 2.0, 100.0, rtt=0.1)
        assert not tcp.pending_ready(1.05)
        assert tcp.pending_ready(1.1)
        assert tcp.apply_pending(1.1, rtt=0.1)
        assert tcp.cwnd == pytest.approx(32.0)
        assert tcp.pending_due is None

    def test_pending_accumulates(self):
        tcp = TcpState("newreno")
        tcp.cwnd, tcp.ssthresh = 64.0, 1.0
        tcp.note_loss(1.0, 30.0, 50.0, rtt=0.1)
        tcp.note_loss(1.05, 30.0, 50.0, rtt=0.1)
        # 60 lost of 100 sent over the window: severe => collapse.
        tcp.apply_pending(1.1, rtt=0.1)
        assert tcp.cwnd == MIN_WINDOW
