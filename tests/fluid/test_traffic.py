"""Unit tests for fluid traffic generation."""

import numpy as np
import pytest

from repro.fluid.params import FlowSlotSpec, PathWorkload
from repro.fluid.traffic import (
    build_slots,
    sample_flow_size_packets,
    sample_gap_seconds,
)


def test_pareto_sizes_have_configured_mean():
    rng = np.random.default_rng(0)
    spec = FlowSlotSpec(mean_size_mb=10.0, pareto_shape=2.5)
    samples = [sample_flow_size_packets(spec, rng) for _ in range(20000)]
    # mean in packets: 10 Mb = 833.3 packets; Pareto sampling error.
    assert np.mean(samples) == pytest.approx(833.3, rel=0.1)


def test_fixed_size_mode():
    rng = np.random.default_rng(0)
    spec = FlowSlotSpec(mean_size_mb=12.0, pareto_shape=0.0)
    values = [sample_flow_size_packets(spec, rng) for _ in range(5)]
    assert values == [pytest.approx(1000.0)] * 5


def test_gap_exponential_mean():
    rng = np.random.default_rng(1)
    spec = FlowSlotSpec(mean_gap_seconds=5.0)
    samples = [sample_gap_seconds(spec, rng) for _ in range(20000)]
    assert np.mean(samples) == pytest.approx(5.0, rel=0.05)


def test_zero_gap():
    rng = np.random.default_rng(1)
    spec = FlowSlotSpec(mean_gap_seconds=0.0)
    assert sample_gap_seconds(spec, rng) == 0.0


def test_build_slots_staggered_and_jittered():
    rng = np.random.default_rng(2)
    wl = {
        "p1": PathWorkload(slots=(FlowSlotSpec(),) * 10),
        "p2": PathWorkload(slots=(FlowSlotSpec(),) * 10),
    }
    slots = build_slots(wl, rng, stagger_seconds=0.5)
    assert len(slots) == 20
    starts = {s.next_start for s in slots}
    assert len(starts) > 10  # staggered
    assert all(0 <= s.next_start <= 0.5 for s in slots)
    factors = [s.rtt_factor for s in slots]
    assert all(0.9 <= f <= 1.1 for f in factors)
    assert len(set(factors)) > 10


def test_slot_lifecycle():
    rng = np.random.default_rng(3)
    wl = {"p1": PathWorkload(slots=(FlowSlotSpec(mean_gap_seconds=1.0),))}
    (slot,) = build_slots(wl, rng, stagger_seconds=0.0)
    assert not slot.active
    slot.maybe_start(0.0, rng)
    assert slot.active
    slot.complete(1.0, rng)
    assert not slot.active
    assert slot.flows_completed == 1
    assert slot.next_start > 1.0
