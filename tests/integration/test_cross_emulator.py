"""Cross-emulator consistency: packet DES vs vectorized fluid engine.

Satellite suite of the vectorization PR: both substrates emulate the
*same* small dumbbell — identical graph, identical class assignment,
matched link rates and policing — under fixed seeds, and must agree
on every qualitative outcome the paper's pipeline consumes:

* under policing, the policed class congests more often than the
  unthrottled class on **both** substrates;
* Algorithm 1 flags the shared link as non-neutral from **both**
  substrates' measurements;
* on the neutral variant, **neither** substrate produces a
  non-neutral verdict, and both unsolvability scores sit well below
  the policed runs'.

The point is not numeric agreement (a per-packet DES and a fluid
model realize different sample paths) but that the inference-visible
event structure survives the fluid approximation — which is what
licenses using the fast engine for the full sweeps.
"""

import numpy as np
import pytest

from repro.core import identify_non_neutral
from repro.core.algorithm import required_pathsets
from repro.core.classes import two_classes
from repro.core.network import Network, Path
from repro.emulator import PacketLinkSpec, PacketNetwork
from repro.fluid.engine import FluidNetwork
from repro.fluid.params import (
    FlowSlotSpec,
    FluidLinkSpec,
    PathWorkload,
    PolicerSpec,
    MSS_BITS,
)
from repro.measurement import pathset_performance_numbers
from repro.measurement.normalize import path_congestion_probability

#: Shared-link service rate used by both substrates (packets/second).
SHARED_RATE_PPS = 400.0

#: Policing rate for the c2 class, as packets/second.
POLICER_RATE_PPS = 60.0

#: Edge links are fast enough to never be the bottleneck.
EDGE_RATE_PPS = 5000.0

C2_PATHS = ("p3", "p4")


def _dumbbell():
    paths = [
        Path(f"p{i}", (f"a{i}", "shared", f"e{i}")) for i in range(1, 5)
    ]
    links = (
        [f"a{i}" for i in range(1, 5)]
        + ["shared"]
        + [f"e{i}" for i in range(1, 5)]
    )
    net = Network(links, paths)
    classes = two_classes(net, list(C2_PATHS))
    return net, classes


def _run_packet(policing, seed=11, duration=60.0):
    net, classes = _dumbbell()
    fast = PacketLinkSpec(rate_pps=EDGE_RATE_PPS, queue_packets=500)
    shared = PacketLinkSpec(
        rate_pps=SHARED_RATE_PPS,
        queue_packets=40,
        policer_rate_pps=POLICER_RATE_PPS if policing else None,
        policed_class="c2" if policing else None,
    )
    specs = {lid: fast for lid in net.link_ids}
    specs["shared"] = shared
    sim = PacketNetwork(
        net,
        classes,
        specs,
        {pid: [50000] for pid in net.path_ids},
        seed=seed,
    )
    return net, sim.run(duration_seconds=duration).measurements


def _run_fluid(policing, seed=11, duration=60.0):
    net, classes = _dumbbell()
    pps_to_mbps = MSS_BITS / 1e6
    fast = FluidLinkSpec(capacity_mbps=EDGE_RATE_PPS * pps_to_mbps)
    shared = FluidLinkSpec(
        capacity_mbps=SHARED_RATE_PPS * pps_to_mbps,
        buffer_rtt_seconds=0.1,  # 40 packets at 400 pps
        policer=(
            PolicerSpec("c2", POLICER_RATE_PPS / SHARED_RATE_PPS)
            if policing
            else None
        ),
    )
    specs = {lid: fast for lid in net.link_ids}
    specs["shared"] = shared
    # Matched workload: continuously-backlogged transfers per path
    # (the packet plan restarts a 50k-packet flow forever), base RTT
    # equal to the packet topology's two-way propagation delay.
    workloads = {
        pid: PathWorkload(
            slots=(
                FlowSlotSpec(
                    mean_size_mb=50000 * MSS_BITS / 1e6,
                    mean_gap_seconds=1.0,
                    pareto_shape=0.0,
                ),
            ),
            rtt_seconds=0.032,
        )
        for pid in net.path_ids
    }
    sim = FluidNetwork(net, classes, specs, workloads, seed=seed)
    return net, sim.run(duration_seconds=duration, warmup_seconds=2.0)


def _congestion_by_class(data, net):
    per_path = {
        pid: path_congestion_probability(data, pid) for pid in net.path_ids
    }
    c1 = float(np.mean([per_path[p] for p in ("p1", "p2")]))
    c2 = float(np.mean([per_path[p] for p in C2_PATHS]))
    return c1, c2


def _infer(net, data):
    fam = required_pathsets(net)
    obs = pathset_performance_numbers(data, fam)
    return identify_non_neutral(net, obs)


@pytest.fixture(scope="module")
def packet_policed():
    net, data = _run_packet(policing=True)
    return net, data


@pytest.fixture(scope="module")
def packet_neutral():
    net, data = _run_packet(policing=False)
    return net, data


@pytest.fixture(scope="module")
def fluid_policed():
    net, res = _run_fluid(policing=True)
    return net, res.measurements


@pytest.fixture(scope="module")
def fluid_neutral():
    net, res = _run_fluid(policing=False)
    return net, res.measurements


class TestCrossEmulatorConsistency:
    def test_policed_class_congests_more_on_both(
        self, packet_policed, fluid_policed
    ):
        for name, (net, data) in (
            ("packet", packet_policed),
            ("fluid", fluid_policed),
        ):
            c1, c2 = _congestion_by_class(data, net)
            assert c2 > c1 + 0.05, (name, c1, c2)
            assert c2 > 1.5 * c1, (name, c1, c2)

    def test_shared_link_flagged_on_both(
        self, packet_policed, fluid_policed
    ):
        for name, (net, data) in (
            ("packet", packet_policed),
            ("fluid", fluid_policed),
        ):
            result = _infer(net, data)
            assert result.identified == (("shared",),), (
                name,
                result.scores,
            )

    def test_neutral_produces_no_fluid_false_positive(
        self, packet_neutral, fluid_neutral
    ):
        """The fluid substrate is clean on the neutral dumbbell; the
        per-packet DES decorrelates paths more (documented deviation,
        see EXPERIMENTS.md), so its neutral claim is a *low score*
        rather than a non-verdict — the separation test below is the
        cross-substrate claim that matters."""
        net, data = fluid_neutral
        result = _infer(net, data)
        assert not result.identified, result.scores
        net, data = packet_neutral
        assert _infer(net, data).scores[("shared",)] < 0.07

    def test_policed_scores_dominate_neutral_scores(
        self, packet_policed, packet_neutral, fluid_policed, fluid_neutral
    ):
        """The unsolvability *separation* — the paper's actual signal
        — shows up on both substrates."""
        for name, (net_p, data_p), (net_n, data_n) in (
            ("packet", packet_policed, packet_neutral),
            ("fluid", fluid_policed, fluid_neutral),
        ):
            policed = _infer(net_p, data_p).scores[("shared",)]
            neutral = _infer(net_n, data_n).scores[("shared",)]
            assert policed > 2 * neutral, (name, policed, neutral)

    def test_classes_balanced_when_neutral(
        self, packet_neutral, fluid_neutral
    ):
        for name, (net, data) in (
            ("packet", packet_neutral),
            ("fluid", fluid_neutral),
        ):
            c1, c2 = _congestion_by_class(data, net)
            assert abs(c1 - c2) < 0.15, (name, c1, c2)
