"""Cross-substrate scenario consistency: AQM and weighted shaping.

The tentpole claim of the substrate layer: one declarative
:class:`~repro.substrate.scenario.Scenario` compiles to either
engine, and the *differentiation families beyond the paper* — class-
targeted AQM early drop and work-conserving weighted service — drive
Algorithm 1 to the same verdict on both, with the unsolvability
score cleanly separated from the neutral baseline (the same
separation structure the original cross-emulator suite asserts for
policing).

Durations are short (45 s) and seeds pinned, so these are smoke-
strength claims: the verdicts and the score *separation*, not
absolute levels (a per-packet DES and a fluid model realize
different sample paths).
"""

import pytest

from repro.experiments.config import EmulationSettings
from repro.substrate import DifferentiationPolicy, Scenario, run_scenario
from repro.topology.dumbbell import SHARED_LINK

SETTINGS = EmulationSettings(
    duration_seconds=45.0, warmup_seconds=5.0, seed=3
)

SUBSTRATES = ("fluid", "packet")

#: Minimum ratio of a differentiated run's unsolvability over the
#: neutral baseline's, per substrate.
MIN_SEPARATION = 3.0

POLICIES = {
    "aqm": DifferentiationPolicy(mechanism="aqm", rate_fraction=0.25),
    "weighted": DifferentiationPolicy(
        mechanism="weighted", rate_fraction=0.25
    ),
    # The paper's dual shaper with a shallow (flow-queue-sized)
    # buffer: at the paper's 0.25 s depth the packet substrate turns
    # the differentiation into latency instead of loss (documented in
    # EXPERIMENTS.md), so the cross-substrate claim is made at 0.05 s.
    "shaping": DifferentiationPolicy(
        mechanism="shaping", rate_fraction=0.25, buffer_seconds=0.05
    ),
}


def _score(outcome) -> float:
    return outcome.algorithm.scores.get((SHARED_LINK,), 0.0)


@pytest.fixture(scope="module")
def outcomes():
    """Every (policy, substrate) outcome plus the neutral baselines."""
    runs = {}
    for sub in SUBSTRATES:
        runs[("neutral", sub)] = run_scenario(
            Scenario(
                name=f"neutral-{sub}",
                policy=None,
                substrate=sub,
                settings=SETTINGS,
            )
        )
        for pname, policy in POLICIES.items():
            runs[(pname, sub)] = run_scenario(
                Scenario(
                    name=f"{pname}-{sub}",
                    policy=policy,
                    substrate=sub,
                    settings=SETTINGS,
                )
            )
    return runs


class TestCrossSubstrateScenarios:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_neutral_not_flagged(self, outcomes, substrate):
        outcome = outcomes[("neutral", substrate)]
        assert not outcome.verdict_non_neutral, outcome.algorithm.scores

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_differentiation_flagged_on_both(
        self, outcomes, policy, substrate
    ):
        outcome = outcomes[(policy, substrate)]
        assert outcome.verdict_non_neutral, (
            policy,
            substrate,
            outcome.algorithm.scores,
        )
        assert any(
            SHARED_LINK in sigma for sigma in outcome.algorithm.identified
        ), (policy, substrate, outcome.algorithm.identified)

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_scores_separate_from_neutral(
        self, outcomes, policy, substrate
    ):
        """The paper's actual signal — unsolvability separation —
        survives both the mechanism change and the substrate change."""
        diff = _score(outcomes[(policy, substrate)])
        neutral = _score(outcomes[("neutral", substrate)])
        assert diff > MIN_SEPARATION * max(neutral, 1e-4), (
            policy,
            substrate,
            diff,
            neutral,
        )

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_quality_clean_on_both(self, outcomes, policy):
        for sub in SUBSTRATES:
            q = outcomes[(policy, sub)].quality
            assert q is not None
            assert q.false_negative_rate == 0.0, (policy, sub)
            assert q.false_positive_rate == 0.0, (policy, sub)
