"""Cross-substrate integration: packet-level DES → inference.

Validates that the full pipeline (per-packet emulation → Algorithm 2
normalization → Algorithm 1) reaches the same verdicts as the fluid
substrate on a small 4-path dumbbell, for both a neutral and a
policing shared link.
"""

import pytest

from repro.core import identify_non_neutral
from repro.core.algorithm import required_pathsets
from repro.core.classes import two_classes
from repro.core.network import Network, Path
from repro.emulator import PacketLinkSpec, PacketNetwork
from repro.measurement import pathset_performance_numbers


def _four_path_dumbbell(policer_rate=None):
    paths = [
        Path(f"p{i}", (f"a{i}", "shared", f"e{i}"))
        for i in range(1, 5)
    ]
    links = (
        [f"a{i}" for i in range(1, 5)]
        + ["shared"]
        + [f"e{i}" for i in range(1, 5)]
    )
    net = Network(links, paths)
    classes = two_classes(net, ["p3", "p4"])
    fast = PacketLinkSpec(rate_pps=5000.0, queue_packets=500)
    shared = PacketLinkSpec(
        rate_pps=400.0,
        queue_packets=40,
        policer_rate_pps=policer_rate,
        policed_class="c2" if policer_rate else None,
    )
    specs = {lid: fast for lid in links}
    specs["shared"] = shared
    return net, classes, specs


def _run_pipeline(policer_rate, seed=11, duration=20.0):
    net, classes, specs = _four_path_dumbbell(policer_rate)
    sim = PacketNetwork(
        net,
        classes,
        specs,
        {pid: [50000] for pid in net.path_ids},
        seed=seed,
    )
    data = sim.run(duration_seconds=duration).measurements
    fam = required_pathsets(net)
    obs = pathset_performance_numbers(data, fam)
    return identify_non_neutral(net, obs)


class TestPacketPipeline:
    def test_policing_detected(self):
        result = _run_pipeline(policer_rate=60.0, duration=60.0)
        assert result.identified == (("shared",),), result.scores

    def test_scores_separate_cleanly(self):
        """The policed run's unsolvability dominates the neutral
        run's — the same signal structure the fluid substrate and
        the paper rely on. (Per-packet droptail decorrelates paths
        more than the fluid model, so the neutral score sits higher
        here; the claim is the separation, not the absolute level —
        see EXPERIMENTS.md substitution notes.)"""
        policed = _run_pipeline(policer_rate=60.0, duration=60.0)
        neutral = _run_pipeline(policer_rate=None, duration=60.0)
        assert (
            policed.scores[("shared",)]
            > 2 * neutral.scores[("shared",)]
        )
        assert neutral.scores[("shared",)] < 0.07
