"""Integration tests: full pipeline from emulation to verdict."""

import numpy as np
import pytest

from repro.core import evaluate, identify_non_neutral
from repro.core.slices import build_slice_system
from repro.experiments import EmulationSettings, run_topology_a
from repro.experiments.topology_b import (
    TOPOLOGY_B_SETTINGS,
    run_topology_b,
)
from repro.measurement import pathset_performance_numbers
from repro.topology.dumbbell import SHARED_LINK

QUICK = EmulationSettings(duration_seconds=90.0, warmup_seconds=5.0)


class TestDumbbellPipeline:
    def test_neutral_dumbbell_verdict(self):
        out = run_topology_a(1, 10.0, QUICK)
        assert not out.verdict_non_neutral
        # All four paths see similar congestion (Fig 8 top row).
        probs = list(out.path_congestion.values())
        assert max(probs) - min(probs) < 0.15

    def test_policing_dumbbell_verdict(self):
        out = run_topology_a(4, 10.0, QUICK)
        assert out.verdict_non_neutral
        assert out.algorithm.identified == ((SHARED_LINK,),)
        # Class-2 paths clearly worse (Fig 8 middle row).
        c1 = (out.path_congestion["p1"] + out.path_congestion["p2"]) / 2
        c2 = (out.path_congestion["p3"] + out.path_congestion["p4"]) / 2
        assert c2 > c1

    def test_shaping_dumbbell_verdict(self):
        out = run_topology_a(7, 10.0, QUICK)
        assert out.verdict_non_neutral

    def test_quality_report(self):
        out = run_topology_a(4, 10.0, QUICK)
        q = out.quality
        assert q.false_negative_rate == 0.0
        assert q.false_positive_rate == 0.0
        assert q.granularity == pytest.approx(1.0)


class TestMeasurementRebinAblation:
    def test_interval_rebinning_preserves_verdict(self):
        """Paper §6.5: results stable across measurement intervals."""
        out = run_topology_a(4, 10.0, QUICK)
        data = out.emulation.measurements
        net = out.inference_network
        system = build_slice_system(net, (SHARED_LINK,))
        for factor in (2, 5):
            rebinned = data.rebinned(factor)
            obs = pathset_performance_numbers(rebinned, system.family)
            result = identify_non_neutral(net, obs)
            assert result.identified == ((SHARED_LINK,),), factor


class TestTopologyBPipeline:
    @pytest.fixture(scope="class")
    def report(self):
        return run_topology_b(
            TOPOLOGY_B_SETTINGS.quick(120.0).with_seed(3)
        )

    def test_policers_covered(self, report):
        """Headline: no false negatives on at least this seed at a
        reduced duration; the bench runs the full-length version."""
        q = report.outcome.quality
        assert q.false_negative_rate <= 2 / 3

    def test_ground_truth_shape(self, report):
        """Policers have split class behaviour; the busy neutral
        ingress l13 treats both classes alike (Fig 10a / Fig 11)."""
        c1, c2 = report.ground_truth["l14"]
        assert c2 > c1
        n1, n2 = report.ground_truth["l13"]
        assert abs(n1 - n2) < 0.1

    def test_queue_traces_present(self, report):
        assert set(report.queue_traces_mb) == {"l13", "l14"}
        for trace in report.queue_traces_mb.values():
            assert trace.shape[0] == report.outcome.emulation.measurements.num_intervals

    def test_sequences_reported(self, report):
        assert len(report.sequences) >= 8
        assert any(s.contains_policer for s in report.sequences)
        for s in report.sequences:
            assert len(s.c2_estimates) + len(s.other_estimates) >= 2
