"""Unit tests for the two-cluster unsolvability decision."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import MeasurementError
from repro.measurement.clustering import (
    classify_scores,
    cluster_decider,
    make_cluster_decider,
    threshold_decider,
    two_means_split,
)


class TestTwoMeansSplit:
    def test_clear_split(self):
        split = two_means_split([0.01, 0.02, 0.01, 0.5, 0.6])
        assert split.separated
        assert split.low_center == pytest.approx(0.04 / 3)
        assert split.high_center == pytest.approx(0.55)
        assert 0.02 < split.threshold < 0.5

    def test_uniform_scores_not_separated(self):
        split = two_means_split([0.3, 0.3, 0.3])
        assert not split.separated

    def test_single_value(self):
        split = two_means_split([0.2])
        assert not split.separated

    def test_all_tiny_not_separated(self):
        split = two_means_split([0.001, 0.002, 0.004])
        assert not split.separated

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            two_means_split([])

    def test_ratio_safeguard(self):
        # High center barely above low: not a real split.
        split = two_means_split([0.30, 0.31, 0.32, 0.33])
        assert not split.separated

    @given(
        st.lists(
            st.floats(0, 1, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=30,
        )
    )
    def test_split_is_optimal_2means(self, values):
        """The returned split minimizes within-cluster SS among all
        sorted splits (exhaustive check)."""
        split = two_means_split(values)
        arr = np.sort(np.asarray(values))

        def cost(k):
            left, right = arr[:k], arr[k:]
            return ((left - left.mean()) ** 2).sum() + (
                (right - right.mean()) ** 2
            ).sum()

        if np.isclose(arr[0], arr[-1]):
            return
        best = min(cost(k) for k in range(1, len(arr)))
        chosen_k = int((arr <= split.threshold).sum())
        chosen_k = min(max(chosen_k, 1), len(arr) - 1)
        assert cost(chosen_k) == pytest.approx(best, abs=1e-9)


class TestClassifyScores:
    def test_separated_population(self):
        scores = {"a": 0.01, "b": 0.02, "c": 0.5}
        verdict = classify_scores(scores)
        assert verdict == {"a": False, "b": False, "c": True}

    def test_all_low_scores_solvable(self):
        scores = {"a": 0.005, "b": 0.007, "c": 0.006}
        assert not any(classify_scores(scores).values())

    def test_definite_overrides_missing_population(self):
        # A single huge score is unsolvable even with nothing to
        # cluster against.
        assert classify_scores({"a": 0.5}) == {"a": True}
        assert classify_scores({"a": 0.01}) == {"a": False}

    def test_empty(self):
        assert classify_scores({}) == {}

    def test_make_cluster_decider_custom_definite(self):
        decider = make_cluster_decider(definite=0.2)
        assert decider({"a": 0.15}) == {"a": False}
        assert decider({"a": 0.25}) == {"a": True}

    def test_threshold_decider(self):
        decider = threshold_decider(0.1)
        assert decider({"a": 0.05, "b": 0.2}) == {"a": False, "b": True}

    def test_cluster_decider_is_default(self):
        assert cluster_decider({"a": 0.5}) == {"a": True}
