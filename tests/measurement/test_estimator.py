"""Tests for the estimate diagnostics."""

import math

import pytest

from repro.core.slices import build_slice_system
from repro.exceptions import MeasurementError
from repro.measurement.estimator import (
    SystemDiagnostics,
    diagnose_system,
    estimate_variance,
)
from repro.topology.figures import figure4


@pytest.fixture
def system_and_obs():
    fig = figure4()
    system = build_slice_system(fig.network, ("l1",))
    obs = {
        ps: fig.performance.pathset_performance(ps)
        for ps in system.family
    }
    return system, obs


class TestEstimateVariance:
    def test_scaling_with_intervals(self, system_and_obs):
        system, obs = system_and_obs
        pair = system.pairs[0]
        v1 = estimate_variance(obs, pair, 1000)
        v2 = estimate_variance(obs, pair, 4000)
        assert v1 == pytest.approx(4 * v2)

    def test_zero_cost_gives_zero_variance(self):
        obs = {
            frozenset(["a"]): 0.0,
            frozenset(["b"]): 0.0,
            frozenset(["a", "b"]): 0.0,
        }
        assert estimate_variance(obs, ("a", "b"), 100) == pytest.approx(
            0.0
        )

    def test_invalid_intervals(self, system_and_obs):
        system, obs = system_and_obs
        with pytest.raises(MeasurementError):
            estimate_variance(obs, system.pairs[0], 0)


class TestDiagnoseSystem:
    def test_fields(self, system_and_obs):
        system, obs = system_and_obs
        diag = diagnose_system(system, obs, 3000)
        assert isinstance(diag, SystemDiagnostics)
        assert diag.sigma == ("l1",)
        assert set(diag.estimates) == set(system.pairs)
        assert all(se >= 0 for se in diag.standard_errors.values())
        assert diag.spread >= 0

    def test_violation_is_many_sigmas(self, system_and_obs):
        """Figure 4's exact violation dwarfs measurement noise."""
        system, obs = system_and_obs
        diag = diagnose_system(system, obs, 3000)
        assert diag.normalized_spread > 5.0

    def test_neutral_spread_is_zero(self):
        from repro.core.performance import neutral_performance

        fig = figure4()
        perf = neutral_performance(
            fig.network, fig.classes, {"l1": 0.2}
        )
        system = build_slice_system(fig.network, ("l1",))
        obs = {
            ps: perf.pathset_performance(ps) for ps in system.family
        }
        diag = diagnose_system(system, obs, 3000)
        assert diag.spread == pytest.approx(0.0, abs=1e-12)
