"""Property-based tests (hypothesis) for the estimator diagnostics.

Executable invariants of the delta-method machinery in
:mod:`repro.measurement.estimator`:

* variances are always nonnegative and finite, for any observation
  vector and interval count;
* variance scales as 1/T: more intervals can only tighten an
  estimate;
* the noise-normalized spread grows like √T for fixed observations
  (spread fixed, pooled SE ∝ 1/√T);
* diagnostics are consistent: the reported spread is the max−min of
  the clamped pair estimates, standard errors are the square roots
  of the pair variances.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network import Network, Path
from repro.core.slices import build_slice_system, shared_sequences
from repro.exceptions import MeasurementError
from repro.measurement.estimator import diagnose_system, estimate_variance

#: y = −log(P̂) observations: P̂ in (~0.005, 1] keeps y in [0, ~5.3].
Y_VALUES = st.floats(min_value=0.0, max_value=5.3)


def _dumbbell_system():
    """The single-shared-link slice system of a 4-path dumbbell."""
    paths = [
        Path(f"p{i}", (f"a{i}", "shared", f"e{i}")) for i in range(1, 5)
    ]
    links = (
        [f"a{i}" for i in range(1, 5)]
        + ["shared"]
        + [f"e{i}" for i in range(1, 5)]
    )
    net = Network(links, paths)
    ((sigma, pairs),) = shared_sequences(net).items()
    return net, build_slice_system(net, sigma, pairs)


NET, SYSTEM = _dumbbell_system()
PAIRS = sorted(SYSTEM.pair_estimates(
    {ps: 0.0 for fam in [SYSTEM.family] for ps in fam}
))


def _observations(ys):
    """Build the observation dict the system's pairs consume."""
    obs = {}
    values = iter(ys)
    for ps in sorted(SYSTEM.family, key=sorted):
        obs[ps] = next(values)
    return obs


NUM_OBSERVATIONS = len(SYSTEM.family)


class TestVarianceProperties:
    @given(
        ys=st.lists(
            Y_VALUES, min_size=NUM_OBSERVATIONS, max_size=NUM_OBSERVATIONS
        ),
        intervals=st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=150)
    def test_nonnegative_and_finite(self, ys, intervals):
        obs = _observations(ys)
        for pair in PAIRS:
            var = estimate_variance(obs, pair, intervals)
            assert var >= 0.0
            assert math.isfinite(var)

    @given(
        ys=st.lists(
            Y_VALUES, min_size=NUM_OBSERVATIONS, max_size=NUM_OBSERVATIONS
        ),
        intervals=st.integers(min_value=1, max_value=10_000),
        factor=st.integers(min_value=2, max_value=50),
    )
    @settings(max_examples=100)
    def test_variance_scales_inversely_with_intervals(
        self, ys, intervals, factor
    ):
        obs = _observations(ys)
        for pair in PAIRS:
            v1 = estimate_variance(obs, pair, intervals)
            v2 = estimate_variance(obs, pair, intervals * factor)
            assert v2 <= v1 + 1e-12
            if v1 > 0:
                assert v2 == pytest.approx(v1 / factor, rel=1e-9)

    def test_nonpositive_intervals_rejected(self):
        obs = _observations([0.1] * NUM_OBSERVATIONS)
        with pytest.raises(MeasurementError):
            estimate_variance(obs, PAIRS[0], 0)


class TestDiagnosticsProperties:
    @given(
        ys=st.lists(
            Y_VALUES, min_size=NUM_OBSERVATIONS, max_size=NUM_OBSERVATIONS
        ),
        intervals=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=100)
    def test_internally_consistent(self, ys, intervals):
        obs = _observations(ys)
        diag = diagnose_system(SYSTEM, obs, intervals)
        clamped = [max(v, 0.0) for v in diag.estimates.values()]
        expected_spread = (
            max(clamped) - min(clamped) if len(clamped) > 1 else 0.0
        )
        assert diag.spread == pytest.approx(expected_spread)
        assert diag.spread >= 0.0
        assert diag.normalized_spread >= 0.0
        for pair, se in diag.standard_errors.items():
            assert se == pytest.approx(
                math.sqrt(estimate_variance(obs, pair, intervals))
            )

    @given(
        ys=st.lists(
            Y_VALUES.filter(lambda y: y > 0.05),
            min_size=NUM_OBSERVATIONS,
            max_size=NUM_OBSERVATIONS,
        ),
        intervals=st.integers(min_value=10, max_value=1_000),
        factor=st.integers(min_value=4, max_value=100),
    )
    @settings(max_examples=100)
    def test_normalized_spread_grows_like_sqrt_T(
        self, ys, intervals, factor
    ):
        """With observations fixed, the raw spread is constant while
        the pooled SE shrinks as 1/√T — so the t-like statistic must
        scale exactly as √factor whenever the spread is nonzero."""
        obs = _observations(ys)
        d1 = diagnose_system(SYSTEM, obs, intervals)
        d2 = diagnose_system(SYSTEM, obs, intervals * factor)
        assert d2.spread == pytest.approx(d1.spread)
        if d1.spread > 1e-9:
            assert d2.normalized_spread == pytest.approx(
                d1.normalized_spread * math.sqrt(factor), rel=1e-6
            )
        else:
            assert d2.normalized_spread <= 1e-3
