"""Tests for the §7 latency-threshold metric."""

import math

import numpy as np
import pytest

from repro.core import identify_non_neutral
from repro.core.algorithm import required_pathsets
from repro.core.network import network_from_path_specs
from repro.exceptions import MeasurementError
from repro.measurement.latency import (
    latency_congestion_probability,
    latency_indicators,
    latency_performance_numbers,
)


def _delays(pattern):
    return {pid: np.array(vals, dtype=float) for pid, vals in pattern.items()}


class TestIndicators:
    def test_thresholding(self):
        ok, ids = latency_indicators(
            _delays({"p1": [0.05, 0.2, 0.08]}), threshold_seconds=0.1
        )
        np.testing.assert_array_equal(ok[0], [1, 0, 1])

    def test_validation(self):
        with pytest.raises(MeasurementError):
            latency_indicators(_delays({"p1": [0.1]}), 0.0)
        with pytest.raises(MeasurementError):
            latency_indicators({}, 0.1)
        with pytest.raises(MeasurementError):
            latency_indicators(
                _delays({"p1": [0.1], "p2": [0.1, 0.2]}), 0.1
            )


class TestPerformanceNumbers:
    def test_joint_probability(self):
        delays = _delays(
            {
                "p1": [0.05, 0.20, 0.05, 0.05],
                "p2": [0.05, 0.05, 0.20, 0.05],
            }
        )
        fam = (
            frozenset({"p1"}),
            frozenset({"p2"}),
            frozenset({"p1", "p2"}),
        )
        obs = latency_performance_numbers(delays, fam, 0.1)
        assert math.exp(-obs[frozenset({"p1"})]) == pytest.approx(0.75)
        assert math.exp(
            -obs[frozenset({"p1", "p2"})]
        ) == pytest.approx(0.5)

    def test_missing_path(self):
        with pytest.raises(MeasurementError):
            latency_performance_numbers(
                _delays({"p1": [0.1]}), (frozenset({"p9"}),), 0.1
            )

    def test_probability_clamped(self):
        obs = latency_performance_numbers(
            _delays({"p1": [0.5] * 10}), (frozenset({"p1"}),), 0.1
        )
        assert math.isfinite(obs[frozenset({"p1"})])

    def test_congestion_probability(self):
        p = latency_congestion_probability(
            _delays({"p1": [0.05, 0.2, 0.2, 0.05]}), "p1", 0.1
        )
        assert p == pytest.approx(0.5)


class TestEndToEndLatencyInference:
    def test_latency_only_violation_detected(self):
        """A hub that delays one class (without dropping) is caught
        through the latency metric: the delayed paths exceed the
        threshold together."""
        rng = np.random.default_rng(0)
        net = network_from_path_specs(
            {f"p{i}": ["hub", f"s{i}"] for i in range(1, 5)}
        )
        intervals = 2000
        base = rng.uniform(0.04, 0.06, size=(4, intervals))
        # The hub queues class-2 traffic (p3, p4) 15% of the time.
        delayed = rng.random(intervals) < 0.15
        delays = {}
        for i in range(1, 5):
            series = base[i - 1].copy()
            if i >= 3:
                series = np.where(delayed, series + 0.2, series)
            delays[f"p{i}"] = series
        fam = required_pathsets(net)
        obs = latency_performance_numbers(delays, fam, 0.1)
        result = identify_non_neutral(net, obs)
        assert result.identified == (("hub",),)

    def test_neutral_latency_consistent(self):
        """Shared latency spikes hit everyone: consistent, neutral."""
        rng = np.random.default_rng(1)
        net = network_from_path_specs(
            {f"p{i}": ["hub", f"s{i}"] for i in range(1, 5)}
        )
        intervals = 2000
        spike = rng.random(intervals) < 0.1
        delays = {
            f"p{i}": np.where(
                spike, 0.25, rng.uniform(0.04, 0.06, size=intervals)
            )
            for i in range(1, 5)
        }
        fam = required_pathsets(net)
        obs = latency_performance_numbers(delays, fam, 0.1)
        result = identify_non_neutral(net, obs)
        assert result.identified == ()


class TestFluidRttTrace:
    def test_engine_records_rtt(self):
        from repro.fluid import FluidNetwork, uniform_workload
        from repro.topology.dumbbell import build_dumbbell

        topo = build_dumbbell()
        wl = uniform_workload(
            topo.network.path_ids,
            flows_per_path=5,
            mean_size_mb=10,
            mean_gap_seconds=1.0,
        )
        sim = FluidNetwork(
            topo.network, topo.classes, topo.link_specs, wl, seed=0
        )
        res = sim.run(duration_seconds=10.0)
        assert set(res.path_rtt_seconds) == set(topo.network.path_ids)
        for series in res.path_rtt_seconds.values():
            assert series.shape == (100,)
            assert (series >= 0.049).all()  # at least the base RTT
