"""Unit tests for Algorithm 2 (normalization) and congestion stats."""

import math

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement.normalize import (
    congestion_free_matrix,
    path_congestion_probability,
    pathset_performance_numbers,
    slice_observations,
)
from repro.measurement.records import MeasurementData, PathRecord


def _data(records, interval=0.1):
    return MeasurementData(
        [PathRecord(pid, np.array(s), np.array(l)) for pid, s, l in records],
        interval,
    )


class TestCongestionFreeMatrix:
    def test_basic_indicators(self):
        data = _data(
            [
                ("p1", [100, 100, 100], [0, 5, 0]),
                ("p2", [100, 100, 100], [0, 0, 3]),
            ]
        )
        status, valid = congestion_free_matrix(data, ("p1", "p2"))
        assert valid.all()
        np.testing.assert_array_equal(status[0], [1, 0, 1])
        np.testing.assert_array_equal(status[1], [1, 1, 0])

    def test_normalization_discounts_heavy_path(self):
        """A thick path's losses are scaled to the thin path's rate:
        50 lost of 1000 sent (5%) remains 5% after normalization and
        stays above a 1% threshold; 5 lost of 1000 (0.5%) stays
        below."""
        data = _data(
            [
                ("thin", [10, 10], [0, 0]),
                ("thick", [1000, 1000], [50, 5]),
            ]
        )
        status, valid = congestion_free_matrix(data, ("thin", "thick"))
        np.testing.assert_array_equal(status[1], [0, 1])

    def test_invalid_intervals_skipped(self):
        data = _data(
            [
                ("p1", [0, 100], [0, 0]),
                ("p2", [100, 100], [0, 0]),
            ]
        )
        status, valid = congestion_free_matrix(data, ("p1", "p2"))
        np.testing.assert_array_equal(valid, [False, True])
        assert status[0][0] == 0  # invalid intervals carry no credit

    def test_sampled_mode_requires_rng(self):
        data = _data([("p1", [10], [0])])
        with pytest.raises(MeasurementError):
            congestion_free_matrix(data, ("p1",), mode="sampled")

    def test_sampled_mode_is_hypergeometric(self):
        rng = np.random.default_rng(0)
        data = _data(
            [
                ("thin", [5] * 200, [0] * 200),
                ("thick", [1000] * 200, [100] * 200),
            ]
        )
        status, valid = congestion_free_matrix(
            data, ("thick", "thin"), mode="sampled", rng=rng
        )
        # thick's sampled detection probability: 1-(0.9)^5 ≈ 0.41.
        detection = 1.0 - status[0].mean()
        assert 0.25 < detection < 0.60

    def test_sampled_mode_matches_reference_stream(self):
        """The array-shaped hypergeometric call consumes the RNG
        stream exactly like the frozen per-cell loop — including
        skipping invalid intervals — so seeded sampled runs are
        bit-reproducible across the rewrite."""
        from repro.core.algorithm_reference import (
            congestion_free_matrix_reference,
        )

        rng = np.random.default_rng(7)
        sent_a = rng.integers(50, 500, size=64)
        sent_b = rng.integers(50, 500, size=64)
        sent_a[::7] = 0  # inject invalid intervals
        data = _data(
            [
                ("p1", sent_a, np.minimum(sent_a // 10, sent_a)),
                ("p2", sent_b, sent_b // 20),
            ]
        )
        status_ref, valid_ref = congestion_free_matrix_reference(
            data, ("p1", "p2"), mode="sampled",
            rng=np.random.default_rng(123),
        )
        status_vec, valid_vec = congestion_free_matrix(
            data, ("p1", "p2"), mode="sampled",
            rng=np.random.default_rng(123),
        )
        np.testing.assert_array_equal(valid_ref, valid_vec)
        np.testing.assert_array_equal(status_ref, status_vec)

    def test_invalid_threshold(self):
        data = _data([("p1", [10], [0])])
        with pytest.raises(MeasurementError):
            congestion_free_matrix(data, ("p1",), loss_threshold=0.0)

    def test_unknown_mode(self):
        data = _data([("p1", [10], [0])])
        with pytest.raises(MeasurementError):
            congestion_free_matrix(data, ("p1",), mode="magic")


class TestPathsetPerformance:
    def test_joint_and_of_members(self):
        """A pair is congestion-free only when both members are."""
        data = _data(
            [
                ("p1", [100] * 4, [5, 0, 0, 0]),
                ("p2", [100] * 4, [0, 5, 0, 0]),
            ]
        )
        fam = (
            frozenset({"p1"}),
            frozenset({"p2"}),
            frozenset({"p1", "p2"}),
        )
        obs = pathset_performance_numbers(data, fam)
        p1 = math.exp(-obs[frozenset({"p1"})])
        pair = math.exp(-obs[frozenset({"p1", "p2"})])
        assert p1 == pytest.approx(3 / 4)
        assert pair == pytest.approx(2 / 4)

    def test_probability_clamped(self):
        """A pathset congested in every interval gets a finite cost."""
        data = _data([("p1", [100] * 10, [50] * 10)])
        obs = pathset_performance_numbers(data, (frozenset({"p1"}),))
        y = obs[frozenset({"p1"})]
        assert math.isfinite(y)
        assert math.exp(-y) == pytest.approx(1 / 20)

    def test_no_common_traffic_raises(self):
        data = _data(
            [("p1", [10, 0], [0, 0]), ("p2", [0, 10], [0, 0])]
        )
        with pytest.raises(MeasurementError):
            pathset_performance_numbers(
                data, (frozenset({"p1", "p2"}),)
            )

    def test_empty_family(self):
        data = _data([("p1", [10], [0])])
        assert pathset_performance_numbers(data, ()) == {}

    def test_slice_observations_merges_families(self):
        data = _data(
            [
                ("p1", [100] * 4, [0] * 4),
                ("p2", [100] * 4, [0] * 4),
                ("p3", [100] * 4, [5] * 4),
            ]
        )
        fam_a = (frozenset({"p1"}), frozenset({"p2"}))
        fam_b = (frozenset({"p2"}), frozenset({"p3"}))
        merged = slice_observations(data, [fam_a, fam_b])
        assert set(merged) == {
            frozenset({"p1"}), frozenset({"p2"}), frozenset({"p3"}),
        }


class TestPathCongestionProbability:
    def test_basic(self):
        data = _data([("p1", [100, 100, 100, 0], [5, 0, 0, 0])])
        assert path_congestion_probability(data, "p1") == pytest.approx(
            1 / 3
        )

    def test_no_traffic(self):
        data = _data([("p1", [0, 0], [0, 0])])
        assert path_congestion_probability(data, "p1") == 0.0

    def test_threshold_sensitivity(self):
        data = _data([("p1", [100], [3])])
        assert path_congestion_probability(data, "p1", 0.01) == 1.0
        assert path_congestion_probability(data, "p1", 0.05) == 0.0
