"""Property-based tests for Algorithm 2's normalization invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.measurement.normalize import (
    congestion_free_matrix,
    pathset_performance_numbers,
)
from repro.measurement.records import MeasurementData, PathRecord

_SETTINGS = settings(max_examples=50, deadline=None)


@st.composite
def two_path_data(draw):
    """Random aligned records for two paths (10–40 intervals)."""
    n = draw(st.integers(10, 40))
    records = []
    for pid in ("p1", "p2"):
        sent = draw(
            st.lists(st.integers(1, 500), min_size=n, max_size=n)
        )
        lost = [
            draw(st.integers(0, s)) if s > 0 else 0 for s in sent
        ]
        records.append(
            PathRecord(pid, np.array(sent), np.array(lost))
        )
    return MeasurementData(records)


@_SETTINGS
@given(two_path_data())
def test_costs_are_nonnegative_and_finite(data):
    fam = (
        frozenset({"p1"}),
        frozenset({"p2"}),
        frozenset({"p1", "p2"}),
    )
    obs = pathset_performance_numbers(data, fam)
    for y in obs.values():
        assert np.isfinite(y)
        assert y >= 0.0


@_SETTINGS
@given(two_path_data())
def test_pair_cost_dominates_members(data):
    """P(both free) <= P(either free): the pair's cost is at least
    each member's (up to the clamping floor)."""
    fam = (
        frozenset({"p1"}),
        frozenset({"p2"}),
        frozenset({"p1", "p2"}),
    )
    obs = pathset_performance_numbers(data, fam)
    pair = obs[frozenset({"p1", "p2"})]
    assert pair >= obs[frozenset({"p1"})] - 1e-9
    assert pair >= obs[frozenset({"p2"})] - 1e-9


@_SETTINGS
@given(two_path_data(), st.integers(2, 10))
def test_scaling_invariance_of_indicators(data, factor):
    """Multiplying every count by a constant leaves the expected-mode
    congestion indicators unchanged (fractions are scale-free)."""
    scaled = MeasurementData(
        [
            PathRecord(
                pid,
                data.record(pid).sent * factor,
                data.record(pid).lost * factor,
            )
            for pid in data.path_ids
        ],
        data.interval_seconds,
    )
    s1, v1 = congestion_free_matrix(data, data.path_ids)
    s2, v2 = congestion_free_matrix(scaled, data.path_ids)
    np.testing.assert_array_equal(v1, v2)
    np.testing.assert_array_equal(s1, s2)


@_SETTINGS
@given(two_path_data())
def test_sampled_mode_never_exceeds_expected_support(data):
    """Sampled-mode indicators are valid (0/1) and only defined on
    the same valid intervals as expected mode."""
    rng = np.random.default_rng(0)
    s_exp, v_exp = congestion_free_matrix(data, data.path_ids)
    s_sam, v_sam = congestion_free_matrix(
        data, data.path_ids, mode="sampled", rng=rng
    )
    np.testing.assert_array_equal(v_exp, v_sam)
    assert set(np.unique(s_sam)) <= {0, 1}
