"""Unit tests for measurement records."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement.records import MeasurementData, PathRecord, from_arrays


def _record(pid="p1", sent=(10, 20, 30), lost=(0, 2, 3)):
    return PathRecord(pid, np.array(sent), np.array(lost))


class TestPathRecord:
    def test_basic(self):
        rec = _record()
        assert rec.num_intervals == 3
        np.testing.assert_allclose(
            rec.loss_fraction(), [0.0, 0.1, 0.1]
        )

    def test_lost_exceeding_sent_rejected(self):
        with pytest.raises(MeasurementError):
            _record(sent=(1, 1), lost=(2, 0))

    def test_negative_counts_rejected(self):
        with pytest.raises(MeasurementError):
            _record(sent=(-1, 1), lost=(0, 0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            PathRecord("p1", np.array([1, 2]), np.array([0]))

    def test_zero_sent_loss_fraction(self):
        rec = _record(sent=(0, 10), lost=(0, 1))
        np.testing.assert_allclose(rec.loss_fraction(), [0.0, 0.1])


class TestMeasurementData:
    def test_alignment_enforced(self):
        with pytest.raises(MeasurementError):
            MeasurementData(
                [_record("p1"), _record("p2", sent=(1,), lost=(0,))]
            )

    def test_duplicate_path_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementData([_record("p1"), _record("p1")])

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementData([])

    def test_duration(self):
        data = MeasurementData([_record()], interval_seconds=0.1)
        assert data.duration_seconds == pytest.approx(0.3)

    def test_subset(self):
        data = MeasurementData([_record("p1"), _record("p2")])
        sub = data.subset(["p2"])
        assert sub.path_ids == ("p2",)

    def test_unknown_record(self):
        data = MeasurementData([_record("p1")])
        with pytest.raises(MeasurementError):
            data.record("p9")

    def test_rebinned(self):
        data = MeasurementData(
            [_record(sent=(10, 20, 30, 40), lost=(1, 2, 3, 4))],
            interval_seconds=0.1,
        )
        binned = data.rebinned(2)
        assert binned.num_intervals == 2
        rec = binned.record("p1")
        np.testing.assert_array_equal(rec.sent, [30, 70])
        np.testing.assert_array_equal(rec.lost, [3, 7])
        assert binned.interval_seconds == pytest.approx(0.2)

    def test_rebinned_drops_tail(self):
        data = MeasurementData([_record()])  # 3 intervals
        assert data.rebinned(2).num_intervals == 1

    def test_rebinned_factor_one_identity(self):
        data = MeasurementData([_record()])
        assert data.rebinned(1) is data

    def test_rebinned_invalid(self):
        data = MeasurementData([_record()])
        with pytest.raises(MeasurementError):
            data.rebinned(0)
        with pytest.raises(MeasurementError):
            data.rebinned(10)

    def test_from_arrays(self):
        data = from_arrays(
            {"p1": np.array([5, 5])}, {"p1": np.array([1, 0])}
        )
        assert data.record("p1").lost.sum() == 1

    def test_from_arrays_mismatched_paths(self):
        with pytest.raises(MeasurementError):
            from_arrays({"p1": np.array([1])}, {"p2": np.array([0])})


class TestAppendIntervals:
    def _data(self):
        return MeasurementData(
            [_record("p1"), _record("p2", sent=(5, 5, 5), lost=(1, 0, 0))],
            interval_seconds=0.1,
        )

    def test_append_extends_records(self):
        data = self._data()
        data.append_intervals(
            {"p1": np.array([7, 8]), "p2": np.array([9, 10])},
            {"p1": np.array([1, 0]), "p2": np.array([0, 2])},
        )
        assert data.num_intervals == 5
        np.testing.assert_array_equal(
            data.record("p1").sent, [10, 20, 30, 7, 8]
        )
        np.testing.assert_array_equal(
            data.record("p2").lost, [1, 0, 0, 0, 2]
        )

    def test_stale_cache_invalidated(self):
        """Regression: the stacked matrices must reflect appended
        intervals even when they were built (and cached) before the
        append."""
        data = self._data()
        before = data.sent_matrix  # builds and caches the stack
        assert before.shape == (2, 3)
        rows_before = data.rows_of(["p2"])
        data.append_intervals(
            {"p1": np.array([7]), "p2": np.array([9])},
            {"p1": np.array([0]), "p2": np.array([0])},
        )
        after = data.sent_matrix
        assert after.shape == (2, 4)
        np.testing.assert_array_equal(after[:, 3], [7, 9])
        np.testing.assert_array_equal(
            data.lost_matrix[:, 3], [0, 0]
        )
        np.testing.assert_array_equal(data.rows_of(["p2"]), rows_before)
        # The pre-append view is untouched (no in-place mutation).
        assert before.shape == (2, 3)

    def test_append_chunk(self):
        from repro.measurement.records import RecordChunk

        data = self._data()
        data.append_chunk(
            RecordChunk(
                path_ids=("p1", "p2"),
                sent=np.array([[4], [6]]),
                lost=np.array([[0], [1]]),
                interval_seconds=0.1,
                start_interval=3,
            )
        )
        assert data.num_intervals == 4

    def test_path_set_mismatch_rejected(self):
        data = self._data()
        with pytest.raises(MeasurementError):
            data.append_intervals(
                {"p1": np.array([1])}, {"p1": np.array([0])}
            )
        with pytest.raises(MeasurementError):
            data.append_intervals(
                {"p1": np.array([1]), "p3": np.array([1])},
                {"p1": np.array([0]), "p3": np.array([0])},
            )

    def test_ragged_append_rejected(self):
        data = self._data()
        with pytest.raises(MeasurementError):
            data.append_intervals(
                {"p1": np.array([1, 2]), "p2": np.array([1])},
                {"p1": np.array([0, 0]), "p2": np.array([0])},
            )

    def test_invalid_counters_rejected_atomically(self):
        data = self._data()
        with pytest.raises(MeasurementError):
            data.append_intervals(
                {"p1": np.array([1]), "p2": np.array([1])},
                {"p1": np.array([2]), "p2": np.array([0])},  # lost > sent
            )
        # Nothing was committed.
        assert data.num_intervals == 3


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        data = MeasurementData(
            [_record("p1"), _record("p2", sent=(5, 6, 7), lost=(0, 1, 2))],
            interval_seconds=0.25,
        )
        path = str(tmp_path / "checkpoint.npz")
        data.save(path)
        loaded = MeasurementData.load(path)
        assert loaded.path_ids == data.path_ids
        assert loaded.interval_seconds == data.interval_seconds
        assert loaded.num_intervals == data.num_intervals
        np.testing.assert_array_equal(
            loaded.sent_matrix, data.sent_matrix
        )
        np.testing.assert_array_equal(
            loaded.lost_matrix, data.lost_matrix
        )

    def test_round_trip_without_suffix(self, tmp_path):
        """Regression: numpy appends '.npz' on write; the same path
        string (suffix-less) must still reload."""
        data = MeasurementData([_record("p1")], interval_seconds=0.1)
        path = str(tmp_path / "ckpt")  # no .npz
        data.save(path)
        loaded = MeasurementData.load(path)
        np.testing.assert_array_equal(
            loaded.sent_matrix, data.sent_matrix
        )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(MeasurementError):
            MeasurementData.load(str(tmp_path / "nope.npz"))

    def test_load_garbage(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(MeasurementError):
            MeasurementData.load(str(path))


class TestAllSentPositive:
    def _data(self, p1_sent=(10, 20, 30)):
        return MeasurementData(
            [
                _record("p1", sent=p1_sent, lost=(0, 0, 0)),
                _record("p2", sent=(5, 5, 5), lost=(1, 0, 0)),
            ],
            interval_seconds=0.1,
        )

    def test_true_and_cached(self):
        data = self._data()
        assert data.all_sent_positive is True
        # Cached: the second read must not rescan (poke the slot).
        assert data._all_sent_positive is True

    def test_false_on_silent_interval(self):
        data = self._data(p1_sent=(10, 0, 30))
        assert data.all_sent_positive is False

    def test_staleness_after_append_intervals(self):
        """Regression: the cached flag must not survive an append
        that introduces a zero-sent interval."""
        data = self._data()
        assert data.all_sent_positive is True  # builds the cache
        data.append_intervals(
            {"p1": np.array([0]), "p2": np.array([4])},
            {"p1": np.array([0]), "p2": np.array([0])},
        )
        assert data.all_sent_positive is False

    def test_staleness_after_append_chunk(self):
        from repro.measurement.records import RecordChunk

        data = self._data()
        assert data.all_sent_positive is True
        data.append_chunk(
            RecordChunk(
                path_ids=("p1", "p2"),
                sent=np.array([[4], [0]]),
                lost=np.array([[0], [0]]),
                interval_seconds=0.1,
                start_interval=3,
            )
        )
        assert data.all_sent_positive is False


class TestFromMatrices:
    def test_zero_copy_and_equivalent(self):
        base = MeasurementData(
            [_record("p1"), _record("p2", sent=(5, 5, 5), lost=(1, 0, 0))],
            interval_seconds=0.25,
        )
        sent, lost = base.sent_matrix, base.lost_matrix
        data = MeasurementData.from_matrices(
            base.path_ids, sent, lost, base.interval_seconds
        )
        assert data.sent_matrix is sent  # shared, not copied
        assert data.lost_matrix is lost
        assert data.path_ids == base.path_ids
        assert data.num_intervals == base.num_intervals
        np.testing.assert_array_equal(
            data.record("p2").sent, base.record("p2").sent
        )
        assert data.all_sent_positive == base.all_sent_positive

    def test_precomputed_flag_is_trusted(self):
        sent = np.array([[0, 1]])
        data = MeasurementData.from_matrices(
            ("p1",), sent, np.zeros_like(sent),
            all_sent_positive=True,
        )
        # Trusted classmethod: the caller's flag wins over a scan.
        assert data.all_sent_positive is True

    def test_validation(self):
        sent = np.array([[1, 2], [3, 4]])
        with pytest.raises(MeasurementError):
            MeasurementData.from_matrices(
                ("p2", "p1"), sent, sent  # unsorted ids
            )
        with pytest.raises(MeasurementError):
            MeasurementData.from_matrices(
                ("p1", "p2"), sent, sent[:1]  # misaligned
            )
        with pytest.raises(MeasurementError):
            MeasurementData.from_matrices(("p1",), sent, sent)
        with pytest.raises(MeasurementError):
            MeasurementData.from_matrices(
                ("p1", "p2"), sent, sent, interval_seconds=0.0
            )
