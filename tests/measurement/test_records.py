"""Unit tests for measurement records."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement.records import MeasurementData, PathRecord, from_arrays


def _record(pid="p1", sent=(10, 20, 30), lost=(0, 2, 3)):
    return PathRecord(pid, np.array(sent), np.array(lost))


class TestPathRecord:
    def test_basic(self):
        rec = _record()
        assert rec.num_intervals == 3
        np.testing.assert_allclose(
            rec.loss_fraction(), [0.0, 0.1, 0.1]
        )

    def test_lost_exceeding_sent_rejected(self):
        with pytest.raises(MeasurementError):
            _record(sent=(1, 1), lost=(2, 0))

    def test_negative_counts_rejected(self):
        with pytest.raises(MeasurementError):
            _record(sent=(-1, 1), lost=(0, 0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            PathRecord("p1", np.array([1, 2]), np.array([0]))

    def test_zero_sent_loss_fraction(self):
        rec = _record(sent=(0, 10), lost=(0, 1))
        np.testing.assert_allclose(rec.loss_fraction(), [0.0, 0.1])


class TestMeasurementData:
    def test_alignment_enforced(self):
        with pytest.raises(MeasurementError):
            MeasurementData(
                [_record("p1"), _record("p2", sent=(1,), lost=(0,))]
            )

    def test_duplicate_path_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementData([_record("p1"), _record("p1")])

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementData([])

    def test_duration(self):
        data = MeasurementData([_record()], interval_seconds=0.1)
        assert data.duration_seconds == pytest.approx(0.3)

    def test_subset(self):
        data = MeasurementData([_record("p1"), _record("p2")])
        sub = data.subset(["p2"])
        assert sub.path_ids == ("p2",)

    def test_unknown_record(self):
        data = MeasurementData([_record("p1")])
        with pytest.raises(MeasurementError):
            data.record("p9")

    def test_rebinned(self):
        data = MeasurementData(
            [_record(sent=(10, 20, 30, 40), lost=(1, 2, 3, 4))],
            interval_seconds=0.1,
        )
        binned = data.rebinned(2)
        assert binned.num_intervals == 2
        rec = binned.record("p1")
        np.testing.assert_array_equal(rec.sent, [30, 70])
        np.testing.assert_array_equal(rec.lost, [3, 7])
        assert binned.interval_seconds == pytest.approx(0.2)

    def test_rebinned_drops_tail(self):
        data = MeasurementData([_record()])  # 3 intervals
        assert data.rebinned(2).num_intervals == 1

    def test_rebinned_factor_one_identity(self):
        data = MeasurementData([_record()])
        assert data.rebinned(1) is data

    def test_rebinned_invalid(self):
        data = MeasurementData([_record()])
        with pytest.raises(MeasurementError):
            data.rebinned(0)
        with pytest.raises(MeasurementError):
            data.rebinned(10)

    def test_from_arrays(self):
        data = from_arrays(
            {"p1": np.array([5, 5])}, {"p1": np.array([1, 0])}
        )
        assert data.record("p1").lost.sum() == 1

    def test_from_arrays_mismatched_paths(self):
        with pytest.raises(MeasurementError):
            from_arrays({"p1": np.array([1])}, {"p2": np.array([0])})
