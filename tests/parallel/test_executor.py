"""ShardExecutor legs vs the sequential pipeline (DESIGN.md S24).

Every leg — inline, thread, process+shm — must return per-shard
``ShardResult`` arrays bitwise-equal to direct
:func:`~repro.parallel.executor.shard_contribution` calls, and the
process leg must move matrices through shared memory only (zero
ndarray bytes in task payloads).
"""

import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.measurement.synthetic import synthesize_records
from repro.parallel import (
    ENV_WORKERS,
    REGISTRY,
    ShardExecutor,
    default_infer_workers,
    reset_transport_stats,
    resolve_shard_mode,
    shard_contribution,
    transport_stats,
)
from repro.topology.generators import random_two_class_performance
from repro.topology.multi_isp import build_federated_multi_isp


def _case(num_isps=3, hosts=4, seed=11, intervals=120):
    fed = build_federated_multi_isp(num_isps, hosts)
    perf, _ = random_two_class_performance(
        np.random.default_rng(seed), fed.network, num_violations=2
    )
    data = synthesize_records(
        perf, np.random.default_rng(seed + 1), num_intervals=intervals
    )
    shard_path_ids = [
        shard.path_ids
        for shard in fed.shard_plan().shards
        if len(shard.path_ids) >= 2
    ]
    return fed.network, data, shard_path_ids


def _sequential(net, data, shard_path_ids):
    return [
        shard_contribution(
            net,
            data,
            pids,
            loss_threshold=0.05,
            normalization_mode="expected",
        )
        for pids in shard_path_ids
    ]


def _assert_results_bitwise(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        if e is None:
            assert g is None
            continue
        assert g.sigmas == e.sigmas
        np.testing.assert_array_equal(g.offsets, e.offsets)
        np.testing.assert_array_equal(g.keys, e.keys)
        # Bitwise, not approx: the executor contract.
        assert g.estimates.tobytes() == e.estimates.tobytes()


class TestWorkerConfig:
    def test_default_is_inline(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert default_infer_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "4")
        assert default_infer_workers() == 4

    @pytest.mark.parametrize("raw", ["zero", "-1", "0"])
    def test_bad_env_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_WORKERS, raw)
        with pytest.raises(ConfigurationError):
            default_infer_workers()

    def test_mode_resolution(self):
        # The suite pins the numpy backend (conftest), where the pair
        # kernels hold the GIL — auto must pick processes.
        assert resolve_shard_mode("auto") == "process"
        assert resolve_shard_mode("thread") == "thread"
        with pytest.raises(ConfigurationError):
            resolve_shard_mode("greenlet")

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardExecutor(workers=2, mode="fiber")
        with pytest.raises(ConfigurationError):
            ShardExecutor(workers=0)


class TestLegs:
    def test_inline_leg_matches_sequential(self):
        net, data, shards = _case()
        expected = _sequential(net, data, shards)
        with ShardExecutor(workers=1) as ex:
            got = ex.run_shards(
                net,
                data,
                shards,
                loss_threshold=0.05,
                normalization_mode="expected",
            )
        assert ex.last_mode == "inline"
        _assert_results_bitwise(got, expected)

    def test_thread_leg_matches_sequential(self):
        net, data, shards = _case()
        expected = _sequential(net, data, shards)
        with ShardExecutor(workers=2, mode="thread") as ex:
            got = ex.run_shards(
                net,
                data,
                shards,
                loss_threshold=0.05,
                normalization_mode="expected",
            )
            assert ex.last_mode == "thread"
            assert ex.last_shm_bytes == 0
        _assert_results_bitwise(got, expected)

    def test_process_leg_matches_sequential(self):
        net, data, shards = _case()
        expected = _sequential(net, data, shards)
        with ShardExecutor(workers=2, mode="process") as ex:
            got = ex.run_shards(
                net,
                data,
                shards,
                loss_threshold=0.05,
                normalization_mode="expected",
            )
            assert ex.last_mode == "process"
            assert ex.last_shm_bytes > 0
        _assert_results_bitwise(got, expected)
        # All segments released after the gather.
        assert REGISTRY.active_segments() == 0

    def test_process_leg_is_pickle_free(self):
        net, data, shards = _case()
        reset_transport_stats()
        with ShardExecutor(workers=2, mode="process") as ex:
            ex.run_shards(
                net,
                data,
                shards,
                loss_threshold=0.05,
                normalization_mode="expected",
            )
        stats = transport_stats()
        assert stats.tasks == len(shards)
        # The invariant of the transport layer: matrices travel via
        # shared memory, task payloads carry zero ndarray bytes.
        assert stats.task_array_bytes == 0
        assert stats.shm_bytes_exported == (
            data.sent_matrix.nbytes
            + data.lost_matrix.nbytes
            + net.path_index.packed.nbytes
        )

    def test_executor_reuse_across_runs(self):
        """Two consecutive runs on one executor: same pool, fresh
        segments, identical results both times."""
        net, data, shards = _case()
        expected = _sequential(net, data, shards)
        with ShardExecutor(workers=2, mode="process") as ex:
            first = ex.run_shards(
                net,
                data,
                shards,
                loss_threshold=0.05,
                normalization_mode="expected",
            )
            pool = ex._pool
            second = ex.run_shards(
                net,
                data,
                shards,
                loss_threshold=0.05,
                normalization_mode="expected",
            )
            assert ex._pool is pool  # warm pool survived
            assert ex.runs == 2
        _assert_results_bitwise(first, expected)
        _assert_results_bitwise(second, expected)
        assert REGISTRY.active_segments() == 0

    def test_single_shard_runs_inline(self):
        net, data, shards = _case()
        with ShardExecutor(workers=4, mode="process") as ex:
            got = ex.run_shards(
                net,
                data,
                shards[:1],
                loss_threshold=0.05,
                normalization_mode="expected",
            )
        assert ex.last_mode == "inline"
        _assert_results_bitwise(
            got, _sequential(net, data, shards[:1])
        )

    def test_close_is_idempotent(self):
        ex = ShardExecutor(workers=2, mode="process")
        ex.close()
        ex.close()


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based crash test"
)
def test_no_devshm_leak_after_runs():
    net, data, shards = _case(num_isps=2, hosts=3, intervals=60)
    with ShardExecutor(workers=2, mode="process") as ex:
        ex.run_shards(
            net,
            data,
            shards,
            loss_threshold=0.05,
            normalization_mode="expected",
        )
    try:
        leftovers = [
            n
            for n in os.listdir("/dev/shm")
            if n.startswith("repro-par")
        ]
    except OSError:
        leftovers = []
    assert leftovers == []
