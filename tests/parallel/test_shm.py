"""Shared-memory transport lifecycle (DESIGN.md S24).

The contract under test: segments are owned by the exporting
registry, refcounted, unlinked exactly once at refcount zero (so
``/dev/shm`` never leaks names — not even when a worker holding a
mapping is killed), and task payloads carry *descriptors*, never
pickled array bytes.
"""

import os
import pickle
import signal

import numpy as np
import pytest

from repro.core.network import Network, Path
from repro.measurement.records import MeasurementData, PathRecord
from repro.parallel import shm
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    IncidenceShare,
    MeasurementShare,
    SegmentRegistry,
    SharedArrayHandle,
    attach,
    attach_measurements,
    reset_transport_stats,
    shm_available,
    transport_stats,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def _devshm_leftovers():
    try:
        names = os.listdir("/dev/shm")
    except OSError:  # non-Linux: fall back to the registry's view
        return []
    return [n for n in names if n.startswith(SEGMENT_PREFIX)]


@pytest.fixture(autouse=True)
def _no_leaks():
    before = set(_devshm_leftovers())
    yield
    shm.detach_all()
    leaked = [n for n in _devshm_leftovers() if n not in before]
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


def _measurements(num_paths=4, num_intervals=16, seed=3):
    rng = np.random.default_rng(seed)
    records = []
    for i in range(num_paths):
        sent = rng.integers(10, 50, size=num_intervals)
        records.append(
            PathRecord(f"p{i}", sent, rng.binomial(sent, 0.1))
        )
    return MeasurementData(records)


class TestSegmentRegistry:
    def test_export_attach_roundtrip(self):
        reg = SegmentRegistry()
        array = np.arange(24, dtype=np.float64).reshape(4, 6)
        handle = reg.export(array)
        try:
            view = attach(handle)
            np.testing.assert_array_equal(view, array)
            assert not view.flags.writeable
            assert handle.nbytes == array.nbytes
        finally:
            shm.detach_all()
            reg.release(handle.name)
        assert reg.active_segments() == 0

    def test_refcount_unlinks_only_at_zero(self):
        reg = SegmentRegistry()
        handle = reg.export(np.ones(8))
        reg.retain(handle.name)
        reg.release(handle.name)
        # One reference left: the name must still resolve.
        seg_names = _devshm_leftovers()
        assert any(handle.name == n for n in seg_names)
        reg.release(handle.name)
        assert reg.active_segments() == 0
        assert handle.name not in _devshm_leftovers()
        # Idempotent: releasing an already-dead name is a no-op.
        reg.release(handle.name)

    def test_unlink_all_sweeps_everything(self):
        reg = SegmentRegistry()
        handles = [reg.export(np.zeros(4)) for _ in range(3)]
        assert reg.active_segments() == 3
        assert reg.active_bytes() == 3 * 4 * 8
        reg.unlink_all()
        assert reg.active_segments() == 0
        for handle in handles:
            assert handle.name not in _devshm_leftovers()

    def test_exported_bytes_total_is_monotonic(self):
        reg = SegmentRegistry()
        handle = reg.export(np.zeros(16))
        total = reg.exported_bytes_total
        reg.release(handle.name)
        assert reg.exported_bytes_total == total == 16 * 8


class TestCrashSafety:
    def test_killed_worker_does_not_leak(self):
        """POSIX semantics: the owner's unlink removes the name; a
        killed attacher's mapping is reclaimed by the OS without a
        chance to resurrect or leak the segment."""
        reg = SegmentRegistry()
        handle = reg.export(np.arange(32, dtype=np.int64))
        pid = os.fork()
        if pid == 0:  # child: attach, then die without cleanup
            attach(handle)
            os.kill(os.getpid(), signal.SIGKILL)
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)
        reg.release(handle.name)
        assert handle.name not in _devshm_leftovers()

    def test_attach_after_owner_release_fails(self):
        reg = SegmentRegistry()
        handle = reg.export(np.ones(4))
        reg.release(handle.name)
        with pytest.raises(Exception):
            attach(handle)


class TestTransportAccounting:
    def test_handle_pickle_is_counted_and_carries_no_array(self):
        reg = SegmentRegistry()
        handle = reg.export(np.zeros((64, 64)))
        try:
            reset_transport_stats()
            payload = pickle.dumps(handle)
            restored = pickle.loads(payload)
            assert restored == handle
            stats = transport_stats()
            assert stats.handle_pickles == 1
            # The descriptor is metadata: orders of magnitude smaller
            # than the 32 KiB array it references.
            assert len(payload) < 1024
        finally:
            reg.release(handle.name)

    def test_count_task_payload_flags_raw_arrays(self):
        reset_transport_stats()
        shm.count_task_payload((1, ("p0", "p1"), {"k": 2.0}))
        assert transport_stats().task_array_bytes == 0
        shm.count_task_payload((1, np.zeros(10)))
        assert transport_stats().task_array_bytes == 80
        assert transport_stats().tasks == 2


class TestShares:
    def test_measurement_share_roundtrip(self):
        data = _measurements()
        share = MeasurementShare.export(data)
        try:
            back = attach_measurements(share.descriptor)
            np.testing.assert_array_equal(
                back.sent_matrix, data.sent_matrix
            )
            np.testing.assert_array_equal(
                back.lost_matrix, data.lost_matrix
            )
            assert back.path_ids == data.path_ids
            assert back.interval_seconds == data.interval_seconds
            assert (
                back.all_sent_positive == data.all_sent_positive
            )
        finally:
            shm.detach_all()
            share.close()
        # close() is idempotent and the names are gone.
        share.close()
        assert share.descriptor.sent.name not in _devshm_leftovers()

    def test_incidence_share_roundtrip(self):
        net = Network(
            ["l0", "l1", "l2"],
            [
                Path("p0", ("l0", "l1")),
                Path("p1", ("l1", "l2")),
                Path("p2", ("l0", "l2")),
            ],
        )
        share = IncidenceShare.export(net)
        try:
            desc = share.descriptor
            assert desc.path_ids == net.path_ids
            assert desc.link_ids == net.link_ids
            packed = attach(desc.packed)
            bits = np.unpackbits(
                np.ascontiguousarray(packed).view(np.uint8), axis=1
            )[:, : len(desc.link_ids)].astype(bool)
            np.testing.assert_array_equal(
                bits, net.path_index.incidence
            )
        finally:
            shm.detach_all()
            share.close()


class TestHandle:
    def test_handle_is_plain_metadata(self):
        handle = SharedArrayHandle(
            name="x", shape=(2, 3), dtype="float64"
        )
        assert handle.nbytes == 48
