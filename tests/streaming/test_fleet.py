"""MonitorFleet: sharded multi-scenario monitoring with caching."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.streaming.fleet import MonitorFleet, MonitorTask
from repro.substrate.scenario import DifferentiationPolicy, Scenario

QUICK = EmulationSettings(
    duration_seconds=15.0, warmup_seconds=2.0, seed=1
)


def _tasks():
    policed = Scenario(
        name="policed",
        topology="dumbbell",
        policy=DifferentiationPolicy(mechanism="policing"),
        settings=QUICK,
    )
    neutral = Scenario(name="neutral", topology="dumbbell", settings=QUICK)
    return [
        MonitorTask(
            name="policed-onset",
            scenario=policed,
            chunk_intervals=25,
            window_intervals=75,
            onset_interval=50,
        ),
        MonitorTask(
            name="always-neutral",
            scenario=neutral,
            chunk_intervals=25,
            window_intervals=75,
        ),
    ]


class TestMonitorFleet:
    def test_outcomes_and_cache_determinism(self, tmp_path):
        fleet = MonitorFleet(base_seed=1, cache_dir=str(tmp_path))
        outcomes = fleet.run(_tasks())
        assert list(outcomes) == ["policed-onset", "always-neutral"]
        assert fleet.stats.cache_misses == 2

        policed = outcomes["policed-onset"]
        neutral = outcomes["always-neutral"]
        assert policed.ground_truth_links == frozenset({"l5"})
        assert neutral.ground_truth_links == frozenset()
        # The neutral scenario never accumulates onto the CUSUM.
        assert not neutral.flagged.any()
        assert not neutral.verdict_non_neutral
        assert neutral.detection_delay_intervals is None
        # The policed stream covers 150 intervals; timelines align.
        assert policed.num_intervals == 150
        assert policed.scores.shape == (
            len(policed.window_ends),
            len(policed.sigmas),
        )

        # Re-running replays every outcome from cache, identically.
        fleet2 = MonitorFleet(base_seed=1, cache_dir=str(tmp_path))
        replay = fleet2.run(_tasks())
        assert fleet2.stats.cache_hits == 2
        assert fleet2.stats.executed == 0
        for name, outcome in outcomes.items():
            np.testing.assert_array_equal(
                replay[name].scores, outcome.scores
            )
            np.testing.assert_array_equal(
                replay[name].flagged, outcome.flagged
            )
            assert replay[name].change_points == outcome.change_points

    def test_batched_fleet_matches_unbatched_exactly(self, tmp_path):
        """Compatible tasks run as one scenario batch; every outcome
        (scores, flags, change points, delays) must be bit-identical
        to strictly per-task execution — which also keeps cached
        outcomes interchangeable between the two modes."""
        tasks = _tasks()
        unbatched = MonitorFleet(base_seed=2, batch_size=1).run(tasks)
        fleet = MonitorFleet(base_seed=2)
        batched = fleet.run(tasks)
        assert fleet.stats.batches == 1
        assert fleet.stats.batched_points == len(tasks)
        for name in unbatched:
            a, b = unbatched[name], batched[name]
            assert a.sigmas == b.sigmas
            np.testing.assert_array_equal(a.window_ends, b.window_ends)
            # assert_array_equal treats same-position NaNs as equal
            # (uninformative windows score NaN in both modes).
            np.testing.assert_array_equal(a.scores, b.scores)
            np.testing.assert_array_equal(a.flagged, b.flagged)
            assert a.change_points == b.change_points
            assert a.final_identified == b.final_identified
            assert a.final_neutral == b.final_neutral
            assert (
                a.detection_delay_intervals
                == b.detection_delay_intervals
            )
            assert a.num_intervals == b.num_intervals

        # A batched fleet's cache replays into an unbatched fleet.
        caching = MonitorFleet(base_seed=2, cache_dir=str(tmp_path))
        caching.run(tasks)
        replay = MonitorFleet(
            base_seed=2, cache_dir=str(tmp_path), batch_size=1
        )
        replay.run(tasks)
        assert replay.stats.cache_hits == len(tasks)
        assert replay.stats.executed == 0

    def test_out_of_range_switch_fails_same_batched_or_not(self):
        """Review regression: an onset beyond the stream end must
        raise the same ConfigurationError whether the task runs
        singly or inside a scenario batch (the batched executor
        validates switch bounds like EmulationStream does)."""
        policed = Scenario(
            name="p",
            topology="dumbbell",
            policy=DifferentiationPolicy(mechanism="policing"),
            settings=QUICK,
        )
        bad = MonitorTask(
            name="late-onset",
            scenario=policed,
            chunk_intervals=25,
            window_intervals=75,
            onset_interval=10_000,  # stream is 150 intervals long
        )
        ok = _tasks()[0]
        with pytest.raises(ConfigurationError):
            MonitorFleet(base_seed=2, batch_size=1).run([ok, bad])
        with pytest.raises(ConfigurationError):
            MonitorFleet(base_seed=2).run([ok, bad])

    def test_baked_seed_does_not_split_groups(self):
        """Review regression: the per-task emulation seed is derived
        from the task name, so tasks differing only in the scenario
        settings' baked seed must still share one batch group."""
        from dataclasses import replace

        from repro.streaming.fleet import monitor_task_group

        a, b = _tasks()
        reseeded = MonitorTask(
            name=b.name,
            scenario=replace(
                b.scenario, settings=b.scenario.settings.with_seed(99)
            ),
            chunk_intervals=b.chunk_intervals,
            window_intervals=b.window_intervals,
        )
        assert monitor_task_group(a) == monitor_task_group(reseeded)

    def test_incompatible_tasks_do_not_group(self):
        """Different chunk cadence (or any scenario knob) splits the
        batch group — those tasks run singly."""
        base, other = _tasks()
        other = MonitorTask(
            name=other.name,
            scenario=other.scenario,
            chunk_intervals=50,
            window_intervals=75,
        )
        fleet = MonitorFleet(base_seed=2)
        fleet.run([base, other])
        assert fleet.stats.batches == 0

    def test_task_validation(self):
        neutral = Scenario(name="n", topology="dumbbell", settings=QUICK)
        with pytest.raises(ConfigurationError):
            MonitorTask(
                name="bad", scenario=neutral, onset_interval=10
            )
        policed = Scenario(
            name="p",
            topology="dumbbell",
            policy=DifferentiationPolicy(mechanism="policing"),
            settings=QUICK,
        )
        with pytest.raises(ConfigurationError):
            MonitorTask(
                name="bad2",
                scenario=policed,
                onset_interval=50,
                offset_interval=40,
            )


class TestAdaptiveFleet:
    """MonitorFleet.run_adaptive: detection-delay contours over a
    scenario lattice, cache-interchangeable with dense fleet runs."""

    @staticmethod
    def _factory():
        policed = Scenario(
            name="policed",
            topology="dumbbell",
            policy=DifferentiationPolicy(mechanism="policing"),
            settings=QUICK,
        )

        def factory(values):
            onset = int(values["onset"])
            return MonitorTask(
                name=f"onset{onset}",
                scenario=policed,
                chunk_intervals=25,
                window_intervals=75,
                onset_interval=onset,
            )

        return factory

    #: Onset lattice: early onsets are detected before the stream
    #: ends, the latest is not — the frontier is "how late can the
    #: differentiation start and still be caught".
    ONSETS = (25.0, 50.0, 75.0, 100.0, 125.0)

    def test_detectability_frontier_localized(self, tmp_path):
        from repro.experiments.adaptive import Cell, GridAxis

        fleet = MonitorFleet(base_seed=1, cache_dir=str(tmp_path))
        result = fleet.run_adaptive(
            (GridAxis("onset", self.ONSETS),), self._factory()
        )
        # Detected at the early onsets, never at the latest one; the
        # flip is localized to the last grid step (onset 100..125).
        assert result.labels[(0,)] == 1
        assert result.labels[(4,)] == 0
        assert result.frontier == (Cell(origin=(3,), step=(1,)),)
        # Bisection skipped onset 50 entirely.
        assert (1,) not in result.labels
        assert result.evaluated == 4
        assert result.results["onset125"].detection_delay_intervals is None
        assert result.results["onset100"].detection_delay_intervals is not None

        # Dense fleet runs over the visited tasks replay the adaptive
        # run's cache entries — shared keys, shared digests.
        factory = self._factory()
        fleet2 = MonitorFleet(base_seed=1, cache_dir=str(tmp_path))
        outcomes = fleet2.run(
            [factory({"onset": o}) for o in (25.0, 75.0, 100.0, 125.0)]
        )
        assert fleet2.stats.cache_hits == 4
        assert fleet2.stats.executed == 0
        for name, outcome in outcomes.items():
            np.testing.assert_array_equal(
                outcome.flagged, result.results[name].flagged
            )

        # The budget counts cache hits: a warm rerun follows the same
        # trajectory, and a budget at the coarse pass drops the
        # refinement loudly instead of silently truncating.
        warm_fleet = MonitorFleet(base_seed=1, cache_dir=str(tmp_path))
        with pytest.warns(RuntimeWarning, match="partial"):
            partial = warm_fleet.run_adaptive(
                (GridAxis("onset", self.ONSETS),),
                self._factory(),
                budget=2,
            )
        assert partial.budget_used == 2
        assert partial.dropped
        assert "PARTIAL" in partial.summary()


class TestFleetPool:
    def test_fleet_reuses_one_warm_pool(self):
        """Two fleet runs on one worker pool: pool created once,
        outcomes identical to an inline fleet."""
        inline = MonitorFleet(base_seed=1).run(_tasks())
        with MonitorFleet(base_seed=1, workers=2) as fleet:
            first = fleet.run(_tasks())
            assert fleet.stats.pool_reused is False
            second = fleet.run(_tasks())
            assert fleet.stats.pool_reused is True
            assert fleet._runner.executor.pools_created == 1
        assert list(first) == list(inline)
        for name in inline:
            for got in (first[name], second[name]):
                np.testing.assert_array_equal(
                    got.scores, inline[name].scores
                )
                assert got.change_points == inline[name].change_points
                assert (
                    got.final_identified
                    == inline[name].final_identified
                )

    def test_close_is_idempotent(self):
        fleet = MonitorFleet(base_seed=1, workers=2)
        fleet.close()
        fleet.close()
