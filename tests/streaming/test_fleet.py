"""MonitorFleet: sharded multi-scenario monitoring with caching."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.streaming.fleet import MonitorFleet, MonitorTask
from repro.substrate.scenario import DifferentiationPolicy, Scenario

QUICK = EmulationSettings(
    duration_seconds=15.0, warmup_seconds=2.0, seed=1
)


def _tasks():
    policed = Scenario(
        name="policed",
        topology="dumbbell",
        policy=DifferentiationPolicy(mechanism="policing"),
        settings=QUICK,
    )
    neutral = Scenario(name="neutral", topology="dumbbell", settings=QUICK)
    return [
        MonitorTask(
            name="policed-onset",
            scenario=policed,
            chunk_intervals=25,
            window_intervals=75,
            onset_interval=50,
        ),
        MonitorTask(
            name="always-neutral",
            scenario=neutral,
            chunk_intervals=25,
            window_intervals=75,
        ),
    ]


class TestMonitorFleet:
    def test_outcomes_and_cache_determinism(self, tmp_path):
        fleet = MonitorFleet(base_seed=1, cache_dir=str(tmp_path))
        outcomes = fleet.run(_tasks())
        assert list(outcomes) == ["policed-onset", "always-neutral"]
        assert fleet.stats.cache_misses == 2

        policed = outcomes["policed-onset"]
        neutral = outcomes["always-neutral"]
        assert policed.ground_truth_links == frozenset({"l5"})
        assert neutral.ground_truth_links == frozenset()
        # The neutral scenario never accumulates onto the CUSUM.
        assert not neutral.flagged.any()
        assert not neutral.verdict_non_neutral
        assert neutral.detection_delay_intervals is None
        # The policed stream covers 150 intervals; timelines align.
        assert policed.num_intervals == 150
        assert policed.scores.shape == (
            len(policed.window_ends),
            len(policed.sigmas),
        )

        # Re-running replays every outcome from cache, identically.
        fleet2 = MonitorFleet(base_seed=1, cache_dir=str(tmp_path))
        replay = fleet2.run(_tasks())
        assert fleet2.stats.cache_hits == 2
        assert fleet2.stats.executed == 0
        for name, outcome in outcomes.items():
            np.testing.assert_array_equal(
                replay[name].scores, outcome.scores
            )
            np.testing.assert_array_equal(
                replay[name].flagged, outcome.flagged
            )
            assert replay[name].change_points == outcome.change_points

    def test_task_validation(self):
        neutral = Scenario(name="n", topology="dumbbell", settings=QUICK)
        with pytest.raises(ConfigurationError):
            MonitorTask(
                name="bad", scenario=neutral, onset_interval=10
            )
        policed = Scenario(
            name="p",
            topology="dumbbell",
            policy=DifferentiationPolicy(mechanism="policing"),
            settings=QUICK,
        )
        with pytest.raises(ConfigurationError):
            MonitorTask(
                name="bad2",
                scenario=policed,
                onset_interval=50,
                offset_interval=40,
            )
