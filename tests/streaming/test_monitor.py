"""NeutralityMonitor on synthetic record streams (no emulation).

Records are synthesized from ground-truth performance models: a
neutral prefix, then a non-neutral suffix starting at a known onset
interval. The monitor must (a) never flag the violated family before
the onset, (b) flag it within a bounded delay after, (c) produce a
final full-stream verdict identical to the one-shot
:func:`infer_from_measurements` on the concatenated records.
"""

import numpy as np
import pytest

from repro.core.classes import two_classes
from repro.core.performance import (
    neutral_performance,
    performance_with_violations,
)
from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.experiments.runner import infer_from_measurements
from repro.measurement.records import MeasurementData, PathRecord
from repro.measurement.synthetic import synthesize_records
from repro.streaming.monitor import (
    NeutralityMonitor,
    two_means_change_point,
)
from repro.streaming.stream import ReplayStream
from repro.topology.generators import star_network

ONSET = 300
TOTAL = 600
SETTINGS = EmulationSettings()


def _onset_data(seed=11, spokes=6):
    """Neutral records for [0, ONSET), violated for [ONSET, TOTAL)."""
    net = star_network(spokes)
    classes = two_classes(
        net, {f"p{i}" for i in range(spokes // 2 + 1, spokes + 1)}
    )
    base = {lid: 0.02 for lid in net.link_ids}
    clean = neutral_performance(net, classes, base)
    violated = performance_with_violations(
        net, classes, base, {"hub": {"c1": 0.02, "c2": 0.45}}
    )
    rng = np.random.default_rng(seed)
    pre = synthesize_records(clean, rng, num_intervals=ONSET)
    post = synthesize_records(violated, rng, num_intervals=TOTAL - ONSET)
    records = []
    for pid in pre.path_ids:
        records.append(
            PathRecord(
                pid,
                np.concatenate(
                    [pre.record(pid).sent, post.record(pid).sent]
                ),
                np.concatenate(
                    [pre.record(pid).lost, post.record(pid).lost]
                ),
            )
        )
    return net, MeasurementData(records, 0.1)


class TestOnsetDetection:
    @pytest.mark.parametrize("chunk", [25, 50, 77])
    def test_flags_after_onset_never_before(self, chunk):
        net, data = _onset_data()
        monitor = NeutralityMonitor(
            net, SETTINGS, window_intervals=100, stride=25
        )
        report = monitor.run(ReplayStream(data, chunk_intervals=chunk))
        hub = ("hub",)
        assert hub in report.sigmas
        col = report.sigmas.index(hub)
        flagged_ends = report.window_ends[report.flagged[:, col]]
        assert flagged_ends.size, "onset never detected"
        # Never before the true onset...
        assert int(flagged_ends.min()) > ONSET
        # ...and within a bounded delay (two windows' worth).
        delay = report.detection_delay(hub, ONSET)
        assert delay is not None and 0 < delay <= 200
        onset_cp = report.onset(hub)
        assert onset_cp.kind == "onset"
        assert onset_cp.estimate_interval >= ONSET - 100

    def test_segmentation_invariance(self):
        """The verdict timeline does not depend on how the stream is
        chunked (windows close at the same interval boundaries)."""
        net, data = _onset_data()
        timelines = []
        for chunk in (20, 60, 145):
            monitor = NeutralityMonitor(
                net, SETTINGS, window_intervals=100, stride=20
            )
            report = monitor.run(
                ReplayStream(data, chunk_intervals=chunk)
            )
            timelines.append(report)
        first = timelines[0]
        for other in timelines[1:]:
            np.testing.assert_array_equal(
                first.window_ends, other.window_ends
            )
            np.testing.assert_array_equal(first.scores, other.scores)
            np.testing.assert_array_equal(
                first.flagged, other.flagged
            )

    def test_final_matches_one_shot_inference(self):
        net, data = _onset_data()
        monitor = NeutralityMonitor(
            net, SETTINGS, window_intervals=100, stride=50
        )
        report = monitor.run(ReplayStream(data, chunk_intervals=40))
        _, one_shot = infer_from_measurements(net, data, SETTINGS)
        assert report.final.identified == one_shot.identified
        assert report.final.neutral == one_shot.neutral
        assert report.final.skipped == one_shot.skipped
        for sigma, score in one_shot.scores.items():
            assert report.final.scores[sigma] == score

    def test_offset_detected_after_policy_removed(self):
        """neutral → violated → neutral again: an offset follows the
        onset once windows clear the violated span."""
        net, data = _onset_data()
        tail_net, tail = _onset_data(seed=12)
        # Append a fresh neutral span after the violated one.
        clean_span = tail.subset(data.path_ids)
        records = []
        for pid in data.path_ids:
            records.append(
                PathRecord(
                    pid,
                    np.concatenate(
                        [
                            data.record(pid).sent,
                            clean_span.record(pid).sent[:ONSET],
                        ]
                    ),
                    np.concatenate(
                        [
                            data.record(pid).lost,
                            clean_span.record(pid).lost[:ONSET],
                        ]
                    ),
                )
            )
        full = MeasurementData(records, 0.1)
        monitor = NeutralityMonitor(
            net, SETTINGS, window_intervals=100, stride=25
        )
        report = monitor.run(ReplayStream(full, chunk_intervals=50))
        kinds = [
            cp.kind
            for cp in report.change_points
            if cp.sigma == ("hub",)
        ]
        assert kinds[:2] == ["onset", "offset"]
        offset_cp = [
            cp
            for cp in report.change_points
            if cp.sigma == ("hub",) and cp.kind == "offset"
        ][0]
        assert offset_cp.interval > TOTAL


class TestMonitorConfig:
    def test_sampled_mode_rejected(self):
        net = star_network(4)
        bad = EmulationSettings(normalization_mode="sampled")
        with pytest.raises(ConfigurationError):
            NeutralityMonitor(net, bad)

    def test_bad_window_rejected(self):
        net = star_network(4)
        with pytest.raises(ConfigurationError):
            NeutralityMonitor(net, SETTINGS, window_intervals=0)
        with pytest.raises(ConfigurationError):
            NeutralityMonitor(net, SETTINGS, stride=0)

    def test_growing_window_mode(self):
        net, data = _onset_data()
        monitor = NeutralityMonitor(net, SETTINGS, stride=100)
        report = monitor.run(ReplayStream(data, chunk_intervals=100))
        assert [w.start_interval for w in report.windows] == [0] * len(
            report.windows
        )
        assert report.windows[-1].end_interval == TOTAL


class TestTwoMeansChangePoint:
    def test_localizes_level_shift(self):
        scores = [0.01] * 10 + [0.5] * 10
        assert two_means_change_point(scores) == 10

    def test_no_shift_returns_none(self):
        assert two_means_change_point([0.01] * 20) is None
        assert two_means_change_point([0.3]) is None
