"""Acceptance: streaming monitor on emulated onset scenarios.

The ISSUE-4 acceptance criterion, on BOTH substrates: a dumbbell
whose shared link switches policing on at interval T mid-run. The
monitor must flag the affected pathset family non-neutral within a
bounded detection delay, never flag it before T, and its final
full-stream verdict must equal the one-shot
:func:`infer_from_measurements` on the session's records.
"""

import numpy as np
import pytest

from repro.experiments.config import EmulationSettings
from repro.experiments.runner import infer_from_measurements
from repro.streaming.fleet import MonitorTask, run_monitor_task
from repro.streaming.monitor import NeutralityMonitor
from repro.streaming.stream import EmulationStream, ReplayStream
from repro.substrate.scenario import (
    DifferentiationPolicy,
    Scenario,
    compile_scenario,
)
from repro.topology.dumbbell import SHARED_LINK

#: 45 s stream, policing switched on at interval 200 (t = 20 s).
SETTINGS = EmulationSettings(
    duration_seconds=45.0, warmup_seconds=5.0, seed=3
)
ONSET = 200
WINDOW = 100
STRIDE = 25

#: Detection-delay bound (intervals): one window to fill with
#: post-onset intervals, plus slack for TCP/policer transients and
#: the CUSUM confirmation — twice the window length is comfortable
#: for the 30 % policer (measured delays sit near one window).
MAX_DELAY = 2 * WINDOW

SIGMA = (SHARED_LINK,)


def _scenario(substrate):
    return Scenario(
        name=f"onset-{substrate}",
        topology="dumbbell",
        substrate=substrate,
        policy=DifferentiationPolicy(mechanism="policing"),
        settings=SETTINGS,
    )


@pytest.fixture(scope="module", params=["fluid", "packet"])
def outcome(request):
    task = MonitorTask(
        name=f"onset-{request.param}",
        scenario=_scenario(request.param),
        chunk_intervals=STRIDE,
        window_intervals=WINDOW,
        stride=STRIDE,
        onset_interval=ONSET,
    )
    return request.param, task, run_monitor_task(SETTINGS.seed, task)


class TestOnsetAcceptance:
    def test_truth_family_flagged_after_onset_only(self, outcome):
        substrate, task, out = outcome
        assert SIGMA in out.sigmas
        col = out.sigmas.index(SIGMA)
        flagged_ends = out.window_ends[out.flagged[:, col]]
        assert flagged_ends.size, f"{substrate}: onset never flagged"
        assert int(flagged_ends.min()) > ONSET, (
            f"{substrate}: flagged before the policy switched on"
        )

    def test_detection_delay_bounded(self, outcome):
        substrate, task, out = outcome
        assert out.detection_delay_intervals is not None
        assert 0 < out.detection_delay_intervals <= MAX_DELAY, (
            f"{substrate}: detection delay "
            f"{out.detection_delay_intervals} intervals "
            f"exceeds the {MAX_DELAY}-interval bound"
        )
        assert out.ground_truth_links == frozenset({SHARED_LINK})
        assert out.truth_sigmas() == (SIGMA,)

    def test_final_verdict_matches_one_shot(self, outcome):
        """Replay the same emulated stream and compare the monitor's
        full-stream verdict to the offline records→verdict pipeline
        (exact equality, including scores)."""
        substrate, task, out = outcome
        from dataclasses import replace

        from repro.experiments.runner import measured_subnetwork

        scenario = replace(
            task.scenario, settings=SETTINGS.with_seed(SETTINGS.seed)
        )
        compiled_on = compile_scenario(scenario)
        compiled_off = compile_scenario(replace(scenario, policy=None))
        stream = EmulationStream(
            compiled_on.network,
            compiled_on.classes,
            compiled_off.link_specs,
            compiled_on.workloads,
            settings=scenario.settings,
            substrate=substrate,
            chunk_intervals=STRIDE,
            switches={ONSET: compiled_on.link_specs},
        )
        inference_net = measured_subnetwork(
            compiled_on.network, compiled_on.workloads
        )
        monitor = NeutralityMonitor(
            inference_net,
            settings=scenario.settings,
            window_intervals=WINDOW,
            stride=STRIDE,
        )
        report = monitor.run(stream)
        records = stream.result().measurements

        _, one_shot = infer_from_measurements(
            inference_net, records, scenario.settings
        )
        assert report.final.identified == one_shot.identified
        assert report.final.neutral == one_shot.neutral
        assert report.final.skipped == one_shot.skipped
        for sigma, score in one_shot.scores.items():
            assert report.final.scores[sigma] == score
        # The full-stream verdict sees the violation (half the stream
        # is policed), matching the fleet outcome.
        assert report.final.identified == out.final_identified
        assert SIGMA in report.final.identified

        # Cross-check: a monitor replaying the emitted records gets
        # the identical timeline (stream source is irrelevant).
        replay_monitor = NeutralityMonitor(
            inference_net,
            settings=scenario.settings,
            window_intervals=WINDOW,
            stride=STRIDE,
        )
        replay = replay_monitor.run(
            ReplayStream(records, chunk_intervals=60)
        )
        np.testing.assert_array_equal(replay.scores, report.scores)
        np.testing.assert_array_equal(replay.flagged, report.flagged)
