"""Record streams and resumable substrate sessions.

The load-bearing guarantee of the streaming layer: advancing an
emulation in segments — through the engine sessions directly or the
substrate-agnostic :class:`EmulationStream` — produces *bit-identical*
records and ground truth to a one-shot run of the same total length,
on both substrates. Everything the monitor concludes then reduces to
properties of the offline pipeline, which the golden suites already
pin.
"""

import numpy as np
import pytest

from repro.emulator.core import PacketNetwork
from repro.exceptions import (
    ConfigurationError,
    EmulationError,
    MeasurementError,
)
from repro.experiments.config import EmulationSettings
from repro.fluid.engine import FluidNetwork
from repro.measurement.records import MeasurementData, PathRecord
from repro.streaming.stream import EmulationStream, ReplayStream
from repro.substrate.registry import get_substrate
from repro.substrate.spec import normalize_specs, to_fluid, to_packet
from repro.topology.dumbbell import SHARED_LINK, build_dumbbell
from repro.workloads.profiles import class_workload

QUICK = EmulationSettings(
    duration_seconds=10.0, warmup_seconds=2.0, seed=5
)


@pytest.fixture(scope="module")
def dumbbell():
    return build_dumbbell(mechanism="policing")


@pytest.fixture(scope="module")
def neutral_dumbbell():
    return build_dumbbell(mechanism=None)


@pytest.fixture(scope="module")
def workloads(dumbbell):
    return class_workload(dumbbell.network.path_ids, mean_size_mb=5.0)


def _assert_results_equal(one, seg):
    assert one.measurements.path_ids == seg.measurements.path_ids
    np.testing.assert_array_equal(
        one.measurements.sent_matrix, seg.measurements.sent_matrix
    )
    np.testing.assert_array_equal(
        one.measurements.lost_matrix, seg.measurements.lost_matrix
    )
    for lid, occ in one.queue_occupancy.items():
        np.testing.assert_array_equal(occ, seg.queue_occupancy[lid])
    for lid, by_class in one.link_class_drops.items():
        for cn, arr in by_class.items():
            np.testing.assert_array_equal(
                arr, seg.link_class_drops[lid][cn]
            )
    for pid, rtt in one.path_rtt_seconds.items():
        np.testing.assert_array_equal(rtt, seg.path_rtt_seconds[pid])
    assert one.flows_completed == seg.flows_completed


class TestFluidSession:
    def test_segmented_equals_one_shot(self, dumbbell, workloads):
        def make():
            return FluidNetwork(
                dumbbell.network,
                dumbbell.classes,
                dumbbell.link_specs,
                workloads,
                seed=5,
            )

        one = make().run(duration_seconds=10.0, warmup_seconds=2.0)
        session = make().session(warmup_seconds=2.0)
        chunks = [session.advance(n) for n in (30, 1, 49, 20)]
        _assert_results_equal(one, session.result())
        # Chunks concatenate to exactly the final records.
        np.testing.assert_array_equal(
            np.concatenate([c.sent for c in chunks], axis=1),
            session.result().measurements.sent_matrix,
        )
        assert [c.start_interval for c in chunks] == [0, 30, 31, 80]
        assert chunks[0].path_ids == one.measurements.path_ids

    def test_result_before_advance_rejected(self, dumbbell, workloads):
        session = FluidNetwork(
            dumbbell.network,
            dumbbell.classes,
            dumbbell.link_specs,
            workloads,
            seed=5,
        ).session()
        with pytest.raises(EmulationError):
            session.result()
        with pytest.raises(EmulationError):
            session.advance(0)

    def test_swap_validation(self, dumbbell, workloads):
        session = FluidNetwork(
            dumbbell.network,
            dumbbell.classes,
            dumbbell.link_specs,
            workloads,
            seed=5,
        ).session()
        with pytest.raises(ConfigurationError):
            session.set_link_specs({"no-such-link": dumbbell.link_specs[SHARED_LINK]})

    def test_policy_onset_changes_stream(
        self, dumbbell, neutral_dumbbell, workloads
    ):
        """Switching policing on mid-run actually differentiates from
        that point; the pre-switch prefix matches a neutral run."""

        def neutral_sim():
            return FluidNetwork(
                neutral_dumbbell.network,
                neutral_dumbbell.classes,
                neutral_dumbbell.link_specs,
                workloads,
                seed=5,
            )

        baseline = neutral_sim().run(
            duration_seconds=16.0, warmup_seconds=2.0
        )
        session = neutral_sim().session(warmup_seconds=2.0)
        pre = session.advance(80)
        session.set_link_specs(dumbbell.link_specs)
        session.advance(80)
        switched = session.result()
        # Identical prefix (the swap is applied exactly at the
        # boundary), diverging afterwards.
        np.testing.assert_array_equal(
            pre.sent, baseline.measurements.sent_matrix[:, :80]
        )
        post_drops = {
            lid: by_class["c2"][80:].sum()
            for lid, by_class in switched.link_class_drops.items()
        }
        base_drops = baseline.link_class_drops[SHARED_LINK]["c2"][80:].sum()
        assert post_drops[SHARED_LINK] > base_drops + 100


    def test_dual_queue_backlog_survives_swap_off(self, workloads):
        """Regression: turning a shaper OFF mid-run must fold its
        virtual-queue backlog into the droptail queue so it drains —
        not strand it in reported occupancy forever."""
        shaped = build_dumbbell(mechanism="shaping")
        neutral = build_dumbbell(mechanism=None)
        session = FluidNetwork(
            shaped.network,
            shaped.classes,
            shaped.link_specs,
            workloads,
            seed=5,
        ).session(warmup_seconds=2.0)
        session.advance(150)  # let the shaper build standing backlog
        session.set_link_specs(neutral.link_specs)
        session.advance(200)
        occ = session.result().queue_occupancy[SHARED_LINK]
        at_swap = occ[149]
        assert at_swap > 1.0  # the shaper really was backlogged
        # After the swap the backlog is serviceable again: occupancy
        # falls well below the shaped level and reaches (near) empty
        # in at least some post-swap interval.
        assert occ[150:].min() < min(1.0, 0.1 * at_swap)

    def test_droptail_backlog_moves_into_dual_queues(self, workloads):
        """The converse swap hands the droptail backlog to the
        virtual queues instead of double-serving the link at 2x
        capacity (total occupancy stays continuous at the boundary)."""
        shaped = build_dumbbell(mechanism="shaping")
        neutral = build_dumbbell(mechanism=None)
        session = FluidNetwork(
            neutral.network,
            neutral.classes,
            neutral.link_specs,
            workloads,
            seed=5,
        ).session(warmup_seconds=2.0)
        session.advance(150)
        session.set_link_specs(shaped.link_specs)
        session.advance(10)
        occ = session.result().queue_occupancy[SHARED_LINK]
        # No discontinuous drain: right after the swap the occupancy
        # cannot fall by more than ~one interval of full capacity
        # (which is what a 2x-service bug would exceed when the
        # pre-swap queue was deep).
        cap_per_interval = 1e8 / 12000 * 0.1  # 100 Mbps, 0.1 s
        assert occ[150] >= occ[149] - cap_per_interval


class TestPacketSession:
    def test_segmented_equals_one_shot(self, dumbbell, workloads):
        specs = {
            lid: to_packet(spec)
            for lid, spec in normalize_specs(dumbbell.link_specs).items()
        }

        def make():
            return PacketNetwork(
                dumbbell.network,
                dumbbell.classes,
                specs,
                workloads=workloads,
                seed=7,
            )

        one = make().run(duration_seconds=8.0, warmup_seconds=2.0)
        session = make().session(warmup_seconds=2.0)
        chunks = [session.advance(n) for n in (13, 1, 50, 16)]
        _assert_results_equal(one, session.result())
        np.testing.assert_array_equal(
            np.concatenate([c.lost for c in chunks], axis=1),
            session.result().measurements.lost_matrix,
        )

    def test_swap_validation(self, dumbbell, workloads):
        specs = {
            lid: to_packet(spec)
            for lid, spec in normalize_specs(dumbbell.link_specs).items()
        }
        session = PacketNetwork(
            dumbbell.network,
            dumbbell.classes,
            specs,
            workloads=workloads,
            seed=7,
        ).session()
        with pytest.raises(ConfigurationError):
            session.set_link_specs({"no-such-link": specs[SHARED_LINK]})


class TestSubstrateStart:
    @pytest.mark.parametrize("substrate", ["fluid", "packet"])
    def test_start_matches_run(self, substrate, dumbbell, workloads):
        specs = normalize_specs(dumbbell.link_specs)
        one = get_substrate(substrate).run(
            dumbbell.network, dumbbell.classes, specs, workloads, QUICK
        )
        session = get_substrate(substrate).start(
            dumbbell.network, dumbbell.classes, specs, workloads, QUICK
        )
        session.advance(60)
        session.advance(40)
        assert session.intervals_done == 100
        _assert_results_equal(one, session.result())

    def test_session_accepts_shared_specs(self, dumbbell, workloads):
        specs = normalize_specs(dumbbell.link_specs)
        session = get_substrate("fluid").start(
            dumbbell.network, dumbbell.classes, specs, workloads, QUICK
        )
        session.advance(1)
        session.set_link_specs(specs)  # shared vocabulary, recompiled
        session.advance(1)
        assert session.intervals_done == 2


class TestReplayStream:
    def test_chunks_reassemble(self):
        rng = np.random.default_rng(0)
        sent = rng.integers(1, 50, size=(3, 37))
        lost = rng.integers(0, 5, size=(3, 37))
        lost = np.minimum(lost, sent)
        data = MeasurementData(
            [
                PathRecord(f"p{i}", sent[i], lost[i])
                for i in range(3)
            ],
            0.1,
        )
        stream = ReplayStream(data, chunk_intervals=10)
        chunks = list(stream)
        assert [c.num_intervals for c in chunks] == [10, 10, 10, 7]
        assert [c.start_interval for c in chunks] == [0, 10, 20, 30]
        np.testing.assert_array_equal(
            np.concatenate([c.sent for c in chunks], axis=1),
            data.sent_matrix,
        )
        # Re-iterating replays from the start (pure view of the data).
        assert len(list(stream)) == 4

    def test_bad_chunk_rejected(self):
        data = MeasurementData([PathRecord("p1", [1], [0])], 0.1)
        with pytest.raises(MeasurementError):
            ReplayStream(data, chunk_intervals=0)


class TestEmulationStream:
    def test_stream_matches_one_shot(self, dumbbell, workloads):
        specs = normalize_specs(dumbbell.link_specs)
        one = get_substrate("fluid").run(
            dumbbell.network, dumbbell.classes, specs, workloads, QUICK
        )
        stream = EmulationStream(
            dumbbell.network,
            dumbbell.classes,
            specs,
            workloads,
            settings=QUICK,
            chunk_intervals=30,
        )
        chunks = list(stream)
        assert sum(c.num_intervals for c in chunks) == 100
        np.testing.assert_array_equal(
            np.concatenate([c.sent for c in chunks], axis=1),
            one.measurements.sent_matrix,
        )
        _assert_results_equal(one, stream.result())

    def test_single_use(self, dumbbell, workloads):
        stream = EmulationStream(
            dumbbell.network,
            dumbbell.classes,
            normalize_specs(dumbbell.link_specs),
            workloads,
            settings=QUICK,
        )
        list(stream)
        with pytest.raises(ConfigurationError):
            list(stream)

    def test_switch_boundaries_respected(
        self, neutral_dumbbell, dumbbell, workloads
    ):
        """Chunks split exactly at scheduled switch intervals."""
        stream = EmulationStream(
            neutral_dumbbell.network,
            neutral_dumbbell.classes,
            normalize_specs(neutral_dumbbell.link_specs),
            workloads,
            settings=QUICK,
            chunk_intervals=30,
            switches={45: normalize_specs(dumbbell.link_specs)},
        )
        starts = [c.start_interval for c in stream]
        assert 45 in starts
        assert stream.session.intervals_done == 100

    def test_keep_ground_truth_false_bounds_memory(
        self, dumbbell, workloads
    ):
        """Dropping history leaves the chunks bit-identical but makes
        result() unavailable (the continuous-monitoring mode)."""
        specs = normalize_specs(dumbbell.link_specs)

        def chunks_of(keep):
            stream = EmulationStream(
                dumbbell.network,
                dumbbell.classes,
                specs,
                workloads,
                settings=QUICK,
                chunk_intervals=30,
                keep_ground_truth=keep,
            )
            return stream, list(stream)

        full_stream, full = chunks_of(True)
        lean_stream, lean = chunks_of(False)
        for a, b in zip(full, lean):
            np.testing.assert_array_equal(a.sent, b.sent)
            np.testing.assert_array_equal(a.lost, b.lost)
        full_stream.result()  # available with history
        with pytest.raises(EmulationError):
            lean_stream.result()

    def test_bad_switch_interval_rejected(self, dumbbell, workloads):
        with pytest.raises(ConfigurationError):
            EmulationStream(
                dumbbell.network,
                dumbbell.classes,
                normalize_specs(dumbbell.link_specs),
                workloads,
                settings=QUICK,
                switches={1000: {}},
            )
