"""Exactness of the incremental windowed Algorithm 2 statistics.

The central property (ISSUE 4's test satellite): for *any* random
record stream, chunk segmentation, and window, the incremental
:class:`SlidingWindowStats` produces **fp-identical** costs (and
identical congestion statuses) to a from-scratch batch recompute —
:func:`batch_slice_observations` on a freshly built
:class:`MeasurementData` of the same window. Both the all-traffic
fast path and the zero-sent fallback are exercised.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.network import Network, Path
from repro.core.slices import build_slice_batch
from repro.exceptions import MeasurementError
from repro.measurement.normalize import batch_slice_observations
from repro.measurement.records import (
    MeasurementData,
    PathRecord,
    RecordChunk,
)
from repro.streaming.window import SlidingWindowStats

_SETTINGS = settings(max_examples=40, deadline=None)


def _star_network(spokes=5):
    """A hub link shared by all paths plus private access links —
    several candidate systems of singletons and pairs."""
    links = ["hub"] + [f"a{i}" for i in range(spokes)]
    paths = [Path(f"p{i}", (f"a{i}", "hub")) for i in range(spokes)]
    return Network(links, paths)


@st.composite
def stream_case(draw):
    """A random stream (with occasional zero-sent cells), a random
    chunking of it, and a random window."""
    spokes = draw(st.integers(4, 6))
    total = draw(st.integers(12, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    sent = rng.integers(1, 60, size=(spokes, total))
    # Sprinkle zero-sent cells in ~1/3 of cases to force the
    # fallback (per-family valid sets).
    if draw(st.integers(0, 2)) == 0:
        holes = rng.random(sent.shape) < 0.05
        sent[holes] = 0
    lost = rng.binomial(sent, draw(st.floats(0.0, 0.2)))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, total - 1), max_size=4, unique=True
            )
        )
    )
    lo = draw(st.integers(0, total - 1))
    hi = draw(st.integers(lo + 1, total))
    return spokes, sent, lost, cuts, lo, hi


@_SETTINGS
@given(stream_case())
def test_incremental_equals_batch_recompute(case):
    spokes, sent, lost, cuts, lo, hi = case
    net = _star_network(spokes)
    path_ids = tuple(f"p{i}" for i in range(spokes))
    stats = SlidingWindowStats(net)

    bounds = [0] + cuts + [sent.shape[1]]
    for a, b in zip(bounds[:-1], bounds[1:]):
        if a == b:
            continue
        stats.append(
            RecordChunk(
                path_ids=path_ids,
                sent=sent[:, a:b],
                lost=lost[:, a:b],
                interval_seconds=0.1,
                start_interval=a,
            )
        )
    assert stats.num_intervals == sent.shape[1]

    # From-scratch reference: a fresh MeasurementData of the window,
    # through the offline batch route.
    window = MeasurementData(
        [
            PathRecord(pid, sent[i, lo:hi], lost[i, lo:hi])
            for i, pid in enumerate(path_ids)
        ],
        0.1,
    )
    batch, _ = build_slice_batch(net, 5)
    try:
        ref_obs, ref_single, ref_pair = batch_slice_observations(
            window, batch
        )
    except MeasurementError:
        # Un-normalizable window (a path with no traffic in any
        # window interval): the incremental route must refuse too.
        with pytest.raises(MeasurementError):
            stats.window_observations(lo, hi)
        return
    inc_obs, inc_single, inc_pair = stats.window_observations(lo, hi)

    # fp-identical costs — not approx-equal.
    np.testing.assert_array_equal(inc_single, ref_single)
    np.testing.assert_array_equal(inc_pair, ref_pair)
    assert set(inc_obs) == set(ref_obs)
    for ps, value in ref_obs.items():
        assert inc_obs[ps] == value

    # Identical statuses on the fast path (the indicator the batch
    # route derives from the stacked matrices).
    if bool((window.sent_matrix > 0).all()):
        expected = (
            window.lost_matrix / window.sent_matrix
        ) < stats.loss_threshold
        np.testing.assert_array_equal(
            stats.window_status(lo, hi), expected
        )


@_SETTINGS
@given(stream_case())
def test_window_results_stable_under_append(case):
    """A window's cached result never changes as the stream grows
    (append-only ⇒ no dirty windows)."""
    spokes, sent, lost, cuts, lo, hi = case
    net = _star_network(spokes)
    path_ids = tuple(f"p{i}" for i in range(spokes))
    total = sent.shape[1]
    if hi >= total:  # need data after the window to append
        hi = max(lo + 1, total - 1)
    stats = SlidingWindowStats(net)
    stats.append_arrays(sent[:, :hi], lost[:, :hi], path_ids)
    try:
        _, before_single, before_pair = stats.window_observations(lo, hi)
    except MeasurementError:
        return  # un-normalizable window; nothing to compare

    stats.append_arrays(sent[:, hi:], lost[:, hi:], path_ids)
    _, after_single, after_pair = stats.window_observations(lo, hi)
    np.testing.assert_array_equal(before_single, after_single)
    np.testing.assert_array_equal(before_pair, after_pair)


class TestValidation:
    def test_non_contiguous_chunk_rejected(self):
        net = _star_network(4)
        stats = SlidingWindowStats(net)
        chunk = RecordChunk(
            path_ids=tuple(f"p{i}" for i in range(4)),
            sent=np.ones((4, 5), dtype=np.int64),
            lost=np.zeros((4, 5), dtype=np.int64),
            interval_seconds=0.1,
            start_interval=3,
        )
        with pytest.raises(MeasurementError):
            stats.append(chunk)

    def test_path_set_change_rejected(self):
        net = _star_network(4)
        stats = SlidingWindowStats(net)
        ids = tuple(f"p{i}" for i in range(4))
        stats.append_arrays(
            np.ones((4, 3), dtype=np.int64),
            np.zeros((4, 3), dtype=np.int64),
            ids,
        )
        with pytest.raises(MeasurementError):
            stats.append_arrays(
                np.ones((4, 3), dtype=np.int64),
                np.zeros((4, 3), dtype=np.int64),
                tuple(reversed(ids)),
            )

    def test_missing_indexed_path_rejected(self):
        net = _star_network(4)
        stats = SlidingWindowStats(net)
        with pytest.raises(MeasurementError):
            stats.append_arrays(
                np.ones((2, 3), dtype=np.int64),
                np.zeros((2, 3), dtype=np.int64),
                ("p0", "p1"),
            )

    def test_empty_window_rejected(self):
        net = _star_network(4)
        stats = SlidingWindowStats(net)
        stats.append_arrays(
            np.ones((4, 8), dtype=np.int64),
            np.zeros((4, 8), dtype=np.int64),
            tuple(f"p{i}" for i in range(4)),
        )
        with pytest.raises(MeasurementError):
            stats.window_observations(4, 4)
        with pytest.raises(MeasurementError):
            stats.window_observations(0, 9)

    def test_capacity_growth_preserves_state(self):
        """Crossing the growable arrays' capacity boundary keeps all
        earlier statistics intact (regression for the doubling)."""
        net = _star_network(4)
        ids = tuple(f"p{i}" for i in range(4))
        rng = np.random.default_rng(1)
        sent = rng.integers(1, 9, size=(4, 700))
        lost = rng.binomial(sent, 0.05)
        stats = SlidingWindowStats(net)
        for a in range(0, 700, 90):
            b = min(a + 90, 700)
            stats.append_arrays(sent[:, a:b], lost[:, a:b], ids)
        window = MeasurementData(
            [
                PathRecord(pid, sent[i, 100:650], lost[i, 100:650])
                for i, pid in enumerate(ids)
            ],
            0.1,
        )
        batch, _ = build_slice_batch(net, 5)
        _, ref_single, ref_pair = batch_slice_observations(window, batch)
        _, inc_single, inc_pair = stats.window_observations(100, 650)
        np.testing.assert_array_equal(inc_single, ref_single)
        np.testing.assert_array_equal(inc_pair, ref_pair)
