"""The substrate-level batch capability and its fallback route."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.fluid.params import (
    FlowSlotSpec,
    FluidLinkSpec,
    PathWorkload,
    PolicerSpec,
)
from repro.substrate import (
    ScenarioBatch,
    get_substrate,
    run_scenario_batch,
    substrate_supports_batch,
)
from repro.topology.dumbbell import SHARED_LINK, build_dumbbell

SETTINGS = EmulationSettings(duration_seconds=3.0, warmup_seconds=0.5)


def _fixture():
    topo = build_dumbbell()
    workloads = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=4.0, mean_gap_seconds=2.0),)
            * 2,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }

    def variant(rate):
        specs = dict(topo.link_specs)
        base = specs[SHARED_LINK]
        specs[SHARED_LINK] = FluidLinkSpec(
            capacity_mbps=base.capacity_mbps,
            buffer_rtt_seconds=base.buffer_rtt_seconds,
            policer=PolicerSpec("c2", rate),
        )
        return specs

    return topo, workloads, variant


class TestScenarioBatch:
    def test_capability_flags(self):
        assert substrate_supports_batch("fluid")
        assert not substrate_supports_batch("packet")

    def test_compile_normalizes_and_validates(self):
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.2), variant(0.4)],
            seeds=[1, 2],
        )
        assert len(batch) == 2
        from repro.substrate.spec import LinkSpec

        assert all(
            isinstance(spec, LinkSpec)
            for specs in batch.variants
            for spec in specs.values()
        )

    def test_length_mismatches_rejected(self):
        topo, workloads, variant = _fixture()
        with pytest.raises(ConfigurationError):
            ScenarioBatch.compile(
                topo.network,
                topo.classes,
                workloads,
                [variant(0.2)],
                seeds=[1, 2],
            )
        with pytest.raises(ConfigurationError):
            ScenarioBatch.compile(
                topo.network,
                topo.classes,
                workloads,
                [variant(0.2), variant(0.3)],
                seeds=[1, 2],
                durations=[3.0],
            )
        with pytest.raises(ConfigurationError):
            ScenarioBatch.compile(
                topo.network, topo.classes, workloads, [], seeds=[]
            )

    def test_batched_matches_single_substrate_runs(self):
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.2), variant(0.45)],
            seeds=[5, 6],
        )
        results = run_scenario_batch(batch, SETTINGS, "fluid")
        backend = get_substrate("fluid")
        for i in range(2):
            single = backend.run(
                topo.network,
                topo.classes,
                batch.variants[i],
                workloads,
                SETTINGS.with_seed(batch.seeds[i]),
            )
            for pid in single.measurements.path_ids:
                np.testing.assert_array_equal(
                    single.measurements.record(pid).sent,
                    results[i].measurements.record(pid).sent,
                )
                np.testing.assert_array_equal(
                    single.measurements.record(pid).lost,
                    results[i].measurements.record(pid).lost,
                )

    def test_fallback_route_for_batchless_substrate(self):
        """The packet DES has no run_batch: variant-at-a-time fallback
        must produce exactly what single runs produce."""
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.25), variant(0.4)],
            seeds=[3, 4],
            durations=[2.0, 3.0],
        )
        results = run_scenario_batch(batch, SETTINGS, "packet")
        assert len(results) == 2
        assert results[0].measurements.num_intervals == 20
        assert results[1].measurements.num_intervals == 30

    def test_per_variant_durations_through_capability(self):
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.25), variant(0.4)],
            seeds=[3, 4],
            durations=[2.0, 3.0],
        )
        results = run_scenario_batch(batch, SETTINGS, "fluid")
        assert results[0].measurements.num_intervals == 20
        assert results[1].measurements.num_intervals == 30

    def test_start_batch_session(self):
        topo, workloads, variant = _fixture()
        backend = get_substrate("fluid")
        from repro.substrate.spec import normalize_specs

        session = backend.start_batch(
            topo.network,
            topo.classes,
            [
                normalize_specs(variant(0.2)),
                normalize_specs(variant(0.4)),
            ],
            workloads,
            SETTINGS,
            seeds=[7, 8],
        )
        chunks = session.advance(10)
        assert session.num_scenarios == 2
        assert all(c.num_intervals == 10 for c in chunks)
        session.set_link_specs(variant(0.3), scenario=0)
        chunks = session.advance(5)
        assert all(c.start_interval == 10 for c in chunks)
        assert session.result(0).measurements.num_intervals == 15
