"""The substrate-level batch capability and its fallback route."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.fluid.params import (
    FlowSlotSpec,
    FluidLinkSpec,
    PathWorkload,
    PolicerSpec,
)
from repro.substrate import (
    ScenarioBatch,
    get_substrate,
    run_scenario_batch,
    substrate_supports_batch,
)
from repro.topology.dumbbell import SHARED_LINK, build_dumbbell

SETTINGS = EmulationSettings(duration_seconds=3.0, warmup_seconds=0.5)


def _fixture():
    topo = build_dumbbell()
    workloads = {
        pid: PathWorkload(
            slots=(FlowSlotSpec(mean_size_mb=4.0, mean_gap_seconds=2.0),)
            * 2,
            rtt_seconds=0.05,
        )
        for pid in topo.network.path_ids
    }

    def variant(rate):
        specs = dict(topo.link_specs)
        base = specs[SHARED_LINK]
        specs[SHARED_LINK] = FluidLinkSpec(
            capacity_mbps=base.capacity_mbps,
            buffer_rtt_seconds=base.buffer_rtt_seconds,
            policer=PolicerSpec("c2", rate),
        )
        return specs

    return topo, workloads, variant


class TestScenarioBatch:
    def test_capability_flags(self):
        assert substrate_supports_batch("fluid")
        assert not substrate_supports_batch("packet")

    def test_compile_normalizes_and_validates(self):
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.2), variant(0.4)],
            seeds=[1, 2],
        )
        assert len(batch) == 2
        from repro.substrate.spec import LinkSpec

        assert all(
            isinstance(spec, LinkSpec)
            for specs in batch.variants
            for spec in specs.values()
        )

    def test_length_mismatches_rejected(self):
        topo, workloads, variant = _fixture()
        with pytest.raises(ConfigurationError):
            ScenarioBatch.compile(
                topo.network,
                topo.classes,
                workloads,
                [variant(0.2)],
                seeds=[1, 2],
            )
        with pytest.raises(ConfigurationError):
            ScenarioBatch.compile(
                topo.network,
                topo.classes,
                workloads,
                [variant(0.2), variant(0.3)],
                seeds=[1, 2],
                durations=[3.0],
            )
        with pytest.raises(ConfigurationError):
            ScenarioBatch.compile(
                topo.network, topo.classes, workloads, [], seeds=[]
            )

    def test_batched_matches_single_substrate_runs(self):
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.2), variant(0.45)],
            seeds=[5, 6],
        )
        results = run_scenario_batch(batch, SETTINGS, "fluid")
        backend = get_substrate("fluid")
        for i in range(2):
            single = backend.run(
                topo.network,
                topo.classes,
                batch.variants[i],
                workloads,
                SETTINGS.with_seed(batch.seeds[i]),
            )
            for pid in single.measurements.path_ids:
                np.testing.assert_array_equal(
                    single.measurements.record(pid).sent,
                    results[i].measurements.record(pid).sent,
                )
                np.testing.assert_array_equal(
                    single.measurements.record(pid).lost,
                    results[i].measurements.record(pid).lost,
                )

    def test_fallback_route_for_batchless_substrate(self):
        """The packet DES has no run_batch: variant-at-a-time fallback
        must produce exactly what single runs produce."""
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.25), variant(0.4)],
            seeds=[3, 4],
            durations=[2.0, 3.0],
        )
        results = run_scenario_batch(batch, SETTINGS, "packet")
        assert len(results) == 2
        assert results[0].measurements.num_intervals == 20
        assert results[1].measurements.num_intervals == 30

    def test_per_variant_durations_through_capability(self):
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.25), variant(0.4)],
            seeds=[3, 4],
            durations=[2.0, 3.0],
        )
        results = run_scenario_batch(batch, SETTINGS, "fluid")
        assert results[0].measurements.num_intervals == 20
        assert results[1].measurements.num_intervals == 30

    def test_start_batch_session(self):
        topo, workloads, variant = _fixture()
        backend = get_substrate("fluid")
        from repro.substrate.spec import normalize_specs

        session = backend.start_batch(
            topo.network,
            topo.classes,
            [
                normalize_specs(variant(0.2)),
                normalize_specs(variant(0.4)),
            ],
            workloads,
            SETTINGS,
            seeds=[7, 8],
        )
        chunks = session.advance(10)
        assert session.num_scenarios == 2
        assert all(c.num_intervals == 10 for c in chunks)
        session.set_link_specs(variant(0.3), scenario=0)
        chunks = session.advance(5)
        assert all(c.start_interval == 10 for c in chunks)
        assert session.result(0).measurements.num_intervals == 15


class TestSubset:
    def _batch(self):
        topo, workloads, variant = _fixture()
        return topo, ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.2), variant(0.3), variant(0.45)],
            seeds=[5, 6, 7],
            durations=[2.0, 3.0, 4.0],
        )

    def test_selects_variants_seeds_durations(self):
        _, batch = self._batch()
        sub = batch.subset([2, 0])
        assert len(sub) == 2
        assert sub.seeds == (7, 5)
        assert sub.durations == (4.0, 2.0)
        assert sub.variants == (batch.variants[2], batch.variants[0])
        # The shared scenario is reused, not re-normalized.
        assert sub.net is batch.net
        assert sub.workloads is batch.workloads

    def test_no_durations_stays_none(self):
        topo, workloads, variant = _fixture()
        batch = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.2), variant(0.3)],
            seeds=[5, 6],
        )
        assert batch.subset([1]).durations is None

    def test_out_of_range_index_rejected(self):
        _, batch = self._batch()
        with pytest.raises(ConfigurationError):
            batch.subset([3])
        with pytest.raises(ConfigurationError):
            batch.subset([-1])

    def test_subset_runs_identically_to_full_batch(self):
        """The batched engines are variant-independent, so carving a
        subset out of a compiled batch reproduces the full batch's
        per-variant records exactly."""
        _, batch = self._batch()
        full = run_scenario_batch(batch, SETTINGS, "fluid")
        part = run_scenario_batch(batch.subset([0, 2]), SETTINGS, "fluid")
        for got, want in zip(part, (full[0], full[2])):
            for pid in want.measurements.path_ids:
                np.testing.assert_array_equal(
                    got.measurements.record(pid).sent,
                    want.measurements.record(pid).sent,
                )
                np.testing.assert_array_equal(
                    got.measurements.record(pid).lost,
                    want.measurements.record(pid).lost,
                )


class TestSingleVariantFastPath:
    def test_one_variant_batch_skips_run_batch(self, monkeypatch):
        """A one-variant batch (the tail of an adaptive refinement
        wave) has nothing to amortize: it must go through the plain
        single-run entry point, not the batch program."""
        topo, workloads, variant = _fixture()
        backend = get_substrate("fluid")

        def exploding_run_batch(*args, **kwargs):
            raise AssertionError(
                "run_batch must not be used for B == 1"
            )

        monkeypatch.setattr(
            backend, "run_batch", exploding_run_batch
        )
        single = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.25)],
            seeds=[3],
        )
        [result] = run_scenario_batch(single, SETTINGS, "fluid")
        want = backend.run(
            topo.network,
            topo.classes,
            single.variants[0],
            workloads,
            SETTINGS.with_seed(3),
        )
        for pid in want.measurements.path_ids:
            np.testing.assert_array_equal(
                result.measurements.record(pid).sent,
                want.measurements.record(pid).sent,
            )
        # ...while a 2-variant batch does dispatch the capability.
        pair = ScenarioBatch.compile(
            topo.network,
            topo.classes,
            workloads,
            [variant(0.25), variant(0.4)],
            seeds=[3, 4],
        )
        with pytest.raises(AssertionError, match="B == 1"):
            run_scenario_batch(pair, SETTINGS, "fluid")
