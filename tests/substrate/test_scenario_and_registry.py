"""Declarative scenarios and the substrate registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import EmulationSettings
from repro.fluid.params import (
    AqmSpec,
    PolicerSpec,
    ShaperSpec,
    WeightedShaperSpec,
)
from repro.substrate import (
    DifferentiationPolicy,
    Scenario,
    available_substrates,
    compile_scenario,
    get_substrate,
    substrate_cache_tag,
)
from repro.topology.dumbbell import SHARED_LINK
from repro.topology.multi_isp import POLICED_LINKS


class TestRegistry:
    def test_both_substrates_registered(self):
        assert set(available_substrates()) == {"fluid", "packet"}

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ConfigurationError):
            get_substrate("ns3")

    def test_cache_tags_carry_name_and_version(self):
        from repro.emulator.core import PACKET_ENGINE_VERSION
        from repro.fluid.engine import ENGINE_VERSION

        assert substrate_cache_tag("fluid") == f"fluid:{ENGINE_VERSION}"
        assert (
            substrate_cache_tag("packet")
            == f"packet:{PACKET_ENGINE_VERSION}"
        )
        assert substrate_cache_tag("fluid") != substrate_cache_tag(
            "packet"
        )


class TestPolicy:
    @pytest.mark.parametrize(
        "mechanism,expected",
        [
            ("policing", PolicerSpec),
            ("shaping", ShaperSpec),
            ("aqm", AqmSpec),
            ("weighted", WeightedShaperSpec),
        ],
    )
    def test_mechanism_spec_types(self, mechanism, expected):
        policy = DifferentiationPolicy(mechanism=mechanism)
        assert isinstance(policy.mechanism_spec(), expected)

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigurationError):
            DifferentiationPolicy(mechanism="throttle")

    def test_weighted_uses_rate_fraction_as_weight(self):
        policy = DifferentiationPolicy(
            mechanism="weighted", rate_fraction=0.2
        )
        assert policy.mechanism_spec().weight == 0.2


class TestScenarioCompile:
    def test_dumbbell_neutral_has_no_truth(self):
        compiled = compile_scenario(Scenario(name="n"))
        assert compiled.ground_truth_links == frozenset()
        assert not any(
            s.is_differentiating for s in compiled.link_specs.values()
        )
        assert set(compiled.workloads) == set(
            compiled.network.path_ids
        )

    def test_dumbbell_policy_lands_on_shared_link(self):
        compiled = compile_scenario(
            Scenario(
                name="a",
                policy=DifferentiationPolicy(mechanism="aqm"),
            )
        )
        assert compiled.ground_truth_links == frozenset((SHARED_LINK,))
        assert compiled.link_specs[SHARED_LINK].aqm is not None
        others = [
            lid
            for lid, s in compiled.link_specs.items()
            if s.is_differentiating
        ]
        assert others == [SHARED_LINK]

    def test_multi_isp_policy_lands_on_policed_links(self):
        compiled = compile_scenario(
            Scenario(
                name="w",
                topology="multi_isp",
                policy=DifferentiationPolicy(
                    mechanism="weighted", rate_fraction=0.3
                ),
            )
        )
        assert compiled.ground_truth_links == frozenset(POLICED_LINKS)
        for lid in POLICED_LINKS:
            assert compiled.link_specs[lid].weighted is not None
            assert compiled.link_specs[lid].policer is None

    def test_multi_isp_neutral_strips_builtin_policers(self):
        compiled = compile_scenario(
            Scenario(name="n", topology="multi_isp", policy=None)
        )
        assert compiled.ground_truth_links == frozenset()
        assert not any(
            s.is_differentiating for s in compiled.link_specs.values()
        )

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="x", topology="fat-tree")

    def test_with_substrate(self):
        sc = Scenario(name="s").with_substrate("packet")
        assert sc.substrate == "packet"

    def test_scenario_is_picklable(self):
        import pickle

        sc = Scenario(
            name="p",
            policy=DifferentiationPolicy(mechanism="policing"),
            settings=EmulationSettings(duration_seconds=30.0),
        )
        assert pickle.loads(pickle.dumps(sc)) == sc
