"""Unified link-spec validation and per-substrate compilation.

The shared compiler (:mod:`repro.substrate.spec`) is the single
validation point for link configuration: every mechanism combination
that one substrate rejects must be rejected for all of them, with
:class:`ReproError` subclasses raised consistently.
"""

import pytest

from repro.emulator.specs import PacketLinkSpec
from repro.exceptions import ConfigurationError, ReproError
from repro.fluid.params import (
    AqmSpec,
    FluidLinkSpec,
    PolicerSpec,
    ShaperSpec,
    WeightedShaperSpec,
)
from repro.substrate.spec import (
    LinkSpec,
    from_fluid,
    normalize_specs,
    to_fluid,
    to_packet,
)

POLICER = PolicerSpec(target_class="c2", rate_fraction=0.3)
SHAPER = ShaperSpec(target_class="c2", rate_fraction=0.3)
AQM = AqmSpec(target_class="c2")
WEIGHTED = WeightedShaperSpec(target_class="c2", weight=0.3)

#: Every pair of distinct mechanisms, as LinkSpec kwargs.
_MECH_KWARGS = {
    "policer": POLICER,
    "shaper": SHAPER,
    "aqm": AQM,
    "weighted": WEIGHTED,
}
MECH_PAIRS = [
    {a: _MECH_KWARGS[a], b: _MECH_KWARGS[b]}
    for i, a in enumerate(_MECH_KWARGS)
    for b in list(_MECH_KWARGS)[i + 1:]
]


class TestSharedValidation:
    @pytest.mark.parametrize("pair", MECH_PAIRS, ids=lambda p: "+".join(p))
    def test_linkspec_rejects_mechanism_combos(self, pair):
        with pytest.raises(ConfigurationError):
            LinkSpec(**pair)

    @pytest.mark.parametrize("pair", MECH_PAIRS, ids=lambda p: "+".join(p))
    def test_fluid_spec_rejects_mechanism_combos(self, pair):
        with pytest.raises(ConfigurationError):
            FluidLinkSpec(**pair)

    def test_packet_spec_rejects_policer_shaper_combo(self):
        """Satellite regression: the seed PacketLinkSpec accepted
        mechanism combinations the fluid spec rejects."""
        with pytest.raises(ConfigurationError):
            PacketLinkSpec(
                policer_rate_pps=100.0,
                policed_class="c2",
                shaper=SHAPER,
            )

    @pytest.mark.parametrize(
        "mech_a,mech_b",
        [("shaper", "aqm"), ("shaper", "weighted"), ("aqm", "weighted")],
    )
    def test_packet_spec_rejects_other_combos(self, mech_a, mech_b):
        with pytest.raises(ConfigurationError):
            PacketLinkSpec(
                **{mech_a: _MECH_KWARGS[mech_a],
                   mech_b: _MECH_KWARGS[mech_b]}
            )

    def test_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            LinkSpec(capacity_mbps=-1)
        with pytest.raises(ReproError):
            LinkSpec(buffer_seconds=0)
        with pytest.raises(ReproError):
            LinkSpec(delay_seconds=-0.001)

    def test_single_mechanism_accepted_everywhere(self):
        for name, mech in _MECH_KWARGS.items():
            spec = LinkSpec(**{name: mech})
            assert spec.is_differentiating
            assert to_fluid(spec).is_differentiating
            assert to_packet(spec).is_differentiating


class TestCompilation:
    def test_fluid_roundtrip_preserves_fields(self):
        fluid = FluidLinkSpec(
            capacity_mbps=50.0, buffer_rtt_seconds=0.1, aqm=AQM
        )
        back = to_fluid(from_fluid(fluid))
        assert back == fluid

    def test_to_packet_units(self):
        spec = LinkSpec(
            capacity_mbps=12.0,  # = 1000 packets/second at 1500 B
            buffer_seconds=0.1,
            delay_seconds=0.004,
            policer=POLICER,
        )
        pkt = to_packet(spec)
        assert pkt.rate_pps == pytest.approx(1000.0)
        assert pkt.queue_packets == 100
        assert pkt.delay_seconds == 0.004
        assert pkt.policer_rate_pps == pytest.approx(300.0)
        assert pkt.policed_class == "c2"
        # Bucket depth: burst_seconds at the policing rate.
        assert pkt.policer_bucket == pytest.approx(
            POLICER.burst_seconds * 300.0
        )

    def test_to_packet_passes_shared_mechanisms_through(self):
        for field, mech in (
            ("shaper", SHAPER), ("aqm", AQM), ("weighted", WEIGHTED)
        ):
            pkt = to_packet(LinkSpec(**{field: mech}))
            assert getattr(pkt, field) is mech

    def test_normalize_accepts_mixed_and_validates(self):
        out = normalize_specs(
            {
                "l1": LinkSpec(capacity_mbps=10.0),
                "l2": FluidLinkSpec(capacity_mbps=20.0, shaper=SHAPER),
            }
        )
        assert set(out) == {"l1", "l2"}
        assert all(isinstance(s, LinkSpec) for s in out.values())
        assert out["l2"].shaper == SHAPER

    def test_normalize_rejects_unknown_types(self):
        with pytest.raises(ConfigurationError):
            normalize_specs({"l1": object()})
