"""Tracing must never perturb a result.

The tier-1 contract from DESIGN.md S23: with telemetry fully enabled
(spans + JSONL export + counters) an experiment produces records,
observations, and verdicts *bit-identical* to the untraced run — on
both step-kernel backends available without numba. The golden suites
pin the disabled path; this suite pins the enabled one.
"""

import dataclasses

import numpy as np
import pytest

from repro import telemetry
from repro.experiments.config import EmulationSettings
from repro.experiments.topology_a import run_topology_a
from repro.fluid import kernels

QUICK = EmulationSettings(
    duration_seconds=30.0, warmup_seconds=5.0, seed=11
)


def _fingerprint(outcome):
    data = outcome.emulation.measurements
    records = {
        pid: {
            f.name: getattr(data.record(pid), f.name)
            for f in dataclasses.fields(data.record(pid))
        }
        for pid in data.path_ids
    }
    return (
        records,
        dict(outcome.observations),
        outcome.algorithm.identified,
        dict(outcome.path_congestion),
    )


def _assert_identical(plain, traced):
    records_a, obs_a, identified_a, congestion_a = plain
    records_b, obs_b, identified_b, congestion_b = traced
    assert records_a.keys() == records_b.keys()
    for pid in records_a:
        for name, value in records_a[pid].items():
            other = records_b[pid][name]
            if isinstance(value, np.ndarray):
                np.testing.assert_array_equal(
                    value, other, err_msg=f"{pid}.{name}"
                )
            else:
                assert value == other, (pid, name)
    assert obs_a == obs_b
    assert identified_a == identified_b
    assert congestion_a == congestion_b


@pytest.mark.parametrize("backend", ["numpy", "python"])
def test_traced_experiment_bit_identical(backend, tmp_path):
    """Table 1 policing workload, traced vs untraced, per backend."""
    trace_path = str(tmp_path / "trace.jsonl")
    with kernels.use_backend(backend):
        telemetry.configure(enabled=False)
        plain = _fingerprint(run_topology_a(6, 30.0, QUICK))
        telemetry.configure(enabled=True, trace_path=trace_path)
        traced = _fingerprint(run_topology_a(6, 30.0, QUICK))
        telemetry.configure(enabled=False)
    _assert_identical(plain, traced)
    # The traced run actually exercised the whole span hierarchy.
    names = {r["name"] for r in telemetry.load_trace(trace_path)}
    assert {
        "experiment.run",
        "experiment.emulate",
        "engine.advance",
        "infer",
        "infer.slices",
        "infer.normalize",
        "infer.score",
    } <= names


def test_in_memory_tracing_matches_untraced():
    """Enabled-without-export must be identical too (cheapest mode)."""
    telemetry.configure(enabled=False)
    plain = _fingerprint(run_topology_a(2, 50.0, QUICK))
    telemetry.configure(enabled=True)
    traced = _fingerprint(run_topology_a(2, 50.0, QUICK))
    _assert_identical(plain, traced)
    assert telemetry.get_tracer().finished  # spans did record


class TestCountingRNG:
    def test_bit_identical_draws(self):
        counter = telemetry.Counter()
        plain = np.random.default_rng(7)
        counted = telemetry.CountingRNG(
            np.random.default_rng(7), counter
        )
        np.testing.assert_array_equal(
            plain.exponential(2.0, size=64),
            counted.exponential(2.0, size=64),
        )
        np.testing.assert_array_equal(
            plain.integers(0, 10, size=16),
            counted.integers(0, 10, size=16),
        )
        assert plain.random() == counted.random()
        # One increment per *call*, not per value drawn.
        assert counter.value == 3.0

    def test_non_callable_attributes_pass_through(self):
        rng = np.random.default_rng(1)
        counted = telemetry.CountingRNG(rng, telemetry.Counter())
        assert counted.bit_generator is rng.bit_generator

    def test_count_rng_is_passthrough_when_disabled(self):
        rng = np.random.default_rng(1)
        assert telemetry.count_rng(rng, telemetry.Counter()) is rng

    def test_count_rng_wraps_when_enabled(self):
        telemetry.configure(enabled=True)
        rng = np.random.default_rng(1)
        wrapped = telemetry.count_rng(rng, telemetry.Counter())
        assert isinstance(wrapped, telemetry.CountingRNG)
