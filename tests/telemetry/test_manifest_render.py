"""RunManifest provenance and the trace/metrics text renderers."""

import json

import numpy as np

from repro import telemetry
from repro.fluid import kernels
from repro.telemetry.render import (
    build_span_tree,
    render_manifest,
    render_metrics_table,
    render_span_tree,
    split_records,
)
from repro.substrate.registry import substrate_cache_tag


class TestRunManifest:
    def test_collect_pins_the_environment(self):
        manifest = telemetry.RunManifest.collect(
            "test", seed=7, spec_digests=("d1", "d2"),
            substrates=("fluid",), extra={"note": "x"},
        )
        assert manifest.kind == "test"
        assert manifest.seed == 7
        assert manifest.spec_digests == ("d1", "d2")
        assert manifest.numpy == np.__version__
        info = kernels.kernel_info()
        assert manifest.kernel_backend == str(info["backend"])
        assert manifest.kernel_compiled == bool(info["compiled"])
        assert manifest.substrates == (
            ("fluid", substrate_cache_tag("fluid")),
        )
        assert manifest.extra == (("note", "x"),)

    def test_run_id_adopted_from_active_tracer(self):
        telemetry.configure(enabled=True, run_id="r-m")
        manifest = telemetry.RunManifest.collect("test")
        assert manifest.run_id == "r-m"

    def test_run_id_none_when_disabled(self):
        assert telemetry.RunManifest.collect("test").run_id is None

    def test_as_dict_wraps_under_manifest_key(self):
        payload = telemetry.RunManifest.collect("test").as_dict()
        assert set(payload) == {"manifest"}
        inner = payload["manifest"]
        assert inner["kind"] == "test"
        assert isinstance(inner["substrates"], dict)
        # The record must survive JSON (it is a trace.jsonl line).
        assert json.loads(json.dumps(payload)) == payload

    def test_write_manifest_lands_in_the_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure(enabled=True, trace_path=path)
        telemetry.write_manifest(telemetry.RunManifest.collect("test"))
        manifests, spans = split_records(telemetry.load_trace(path))
        assert spans == []
        (manifest,) = manifests
        assert manifest["kind"] == "test"


def _span(name, span_id, parent=None, dur=0.0):
    return {"name": name, "span": span_id, "parent": parent, "dur": dur}


class TestSpanTree:
    def test_siblings_with_one_name_aggregate(self):
        spans = [
            _span("sweep.run", "1.1", dur=3.0),
            _span("sweep.point", "1.2", parent="1.1", dur=1.0),
            _span("sweep.point", "1.3", parent="1.1", dur=2.0),
        ]
        root = build_span_tree(spans)
        run = root.children["sweep.run"]
        point = run.children["sweep.point"]
        assert point.count == 2
        assert point.total == 3.0
        assert run.self_time == 0.0
        assert root.total == 3.0

    def test_orphans_graft_onto_the_root(self):
        spans = [_span("worker", "2.1", parent="not-in-file", dur=1.0)]
        root = build_span_tree(spans)
        assert root.children["worker"].count == 1
        assert root.total == 1.0

    def test_render_tree_and_min_seconds_filter(self):
        spans = [
            _span("outer", "1.1", dur=2.0),
            _span("fast", "1.2", parent="1.1", dur=0.001),
            _span("slow", "1.3", parent="1.1", dur=1.9),
        ]
        text = render_span_tree(spans)
        assert "outer" in text and "slow" in text and "fast" in text
        assert "100.0%" in text
        filtered = render_span_tree(spans, min_seconds=0.01)
        assert "fast" not in filtered
        assert "slow" in filtered

    def test_render_empty(self):
        assert render_span_tree([]) == "no spans recorded\n"


class TestRenderManifest:
    def test_fields_appear(self):
        payload = telemetry.RunManifest.collect(
            "cli:sweep", seed=3, substrates=("fluid",)
        ).as_dict()["manifest"]
        text = render_manifest(payload)
        assert text.startswith("manifest:")
        assert "kind: cli:sweep" in text
        assert "seed: 3" in text
        assert f"kernel: {payload['kernel_backend']}" in text


class TestRenderMetrics:
    def test_counter_and_histogram_rows(self):
        reg = telemetry.Registry()
        reg.counter("repro_sweep_executed_total", substrate="fluid").inc(4)
        h = reg.histogram("repro_sweep_point_seconds", buckets=(1.0,))
        h.observe(0.5)
        h.observe(0.25)
        text = render_metrics_table(reg.to_json())
        assert 'repro_sweep_executed_total{substrate=fluid}' in text
        assert "4" in text
        assert "2 obs" in text
        assert "sum=0.7500s mean=0.3750s" in text

    def test_render_empty(self):
        assert render_metrics_table({}) == "no metrics recorded\n"
