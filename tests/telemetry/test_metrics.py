"""Registry instruments and their Prometheus/JSON exports."""

import math

import pytest

from repro import telemetry
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    NOOP_INSTRUMENT,
    Registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = Registry()
        c = reg.counter("hits_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Registry().counter("hits_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Registry().gauge("depth")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0

    def test_histogram_buckets_sum_count(self):
        h = Registry().histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            h.observe(value)
        assert h.counts == [1, 2, 1]  # (<=0.1, <=1.0, +Inf)
        assert h.count == 4
        assert h.total == pytest.approx(6.05)

    def test_histogram_default_buckets(self):
        h = Registry().histogram("lat")
        assert h.buckets == DEFAULT_BUCKETS


class TestRegistry:
    def test_same_name_and_labels_share_an_instrument(self):
        reg = Registry()
        a = reg.counter("hits_total", substrate="fluid")
        b = reg.counter("hits_total", substrate="fluid")
        c = reg.counter("hits_total", substrate="packet")
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self):
        reg = Registry()
        assert reg.counter("x", a="1", b="2") is reg.counter(
            "x", b="2", a="1"
        )

    def test_kind_mismatch_rejected(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_disabled_registry_hands_out_the_noop(self):
        reg = Registry(enabled=False)
        assert reg.counter("x") is NOOP_INSTRUMENT
        assert reg.gauge("y") is NOOP_INSTRUMENT
        assert reg.histogram("z") is NOOP_INSTRUMENT
        NOOP_INSTRUMENT.inc()
        NOOP_INSTRUMENT.dec()
        NOOP_INSTRUMENT.set(1.0)
        NOOP_INSTRUMENT.observe(1.0)

    def test_reset_clears_families(self):
        reg = Registry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.to_json() == {}

    def test_module_registry_reset_helper(self):
        telemetry.get_registry().counter("tmp_total").inc()
        telemetry.reset_registry()
        assert telemetry.get_registry().to_json() == {}


class TestJsonExport:
    def test_round_trip_through_file(self, tmp_path):
        reg = Registry()
        reg.counter("hits_total", "hits", substrate="fluid").inc(3)
        reg.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        path = str(tmp_path / "metrics.json")
        reg.write_json(path)
        data = telemetry.load_metrics(path)
        assert data == reg.to_json()
        hits = data["hits_total"]
        assert hits["kind"] == "counter"
        assert hits["help"] == "hits"
        assert hits["series"] == [
            {"labels": {"substrate": "fluid"}, "value": 3.0}
        ]
        (lat,) = data["lat_seconds"]["series"]
        assert lat == {
            "labels": {},
            "buckets": [1.0],
            "counts": [1, 0],
            "sum": 0.5,
            "count": 1,
        }


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = Registry()
        reg.counter("hits_total", "total hits", substrate="fluid").inc(3)
        reg.gauge("depth").set(1.5)
        text = reg.to_prometheus()
        assert "# HELP hits_total total hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{substrate="fluid"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 1.5" in text
        assert text.endswith("\n")

    def test_histogram_is_cumulative(self):
        reg = Registry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            h.observe(value)
        lines = reg.to_prometheus().splitlines()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_sum 5.55" in lines
        assert "lat_count 3" in lines

    def test_empty_registry_renders_empty(self):
        assert Registry().to_prometheus() == ""

    def test_inf_bound_formatting(self):
        reg = Registry()
        reg.histogram("lat", buckets=(math.inf,)).observe(1.0)
        assert 'lat_bucket{le="+Inf"} 1' in reg.to_prometheus()
