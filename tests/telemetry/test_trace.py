"""Tracer core: enablement, span nesting, export, cross-process context."""

import json
import os
import pickle
import threading

import pytest

from repro import telemetry
from repro.telemetry.trace import _parse_env


class TestEnvParsing:
    @pytest.mark.parametrize("value", [None, "", "0"])
    def test_disabled_values(self, value):
        assert _parse_env(value) == (False, None)

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on"])
    def test_truthy_values_enable_in_memory(self, value):
        assert _parse_env(value) == (True, None)

    def test_other_values_are_export_directories(self, tmp_path):
        on, path = _parse_env(str(tmp_path))
        assert on
        assert path == str(tmp_path / telemetry.TRACE_FILENAME)

    def test_configure_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(telemetry.ENV_VAR, str(tmp_path))
        tracer = telemetry.configure_from_env()
        assert tracer.enabled
        assert tracer.trace_path.startswith(str(tmp_path))
        assert telemetry.export_dir() == str(tmp_path)


class TestDisabledFastPath:
    def test_span_returns_shared_noop_singleton(self):
        assert not telemetry.enabled()
        span = telemetry.span("anything", key=1)
        assert span is telemetry.NOOP_SPAN
        assert telemetry.span("other") is span

    def test_noop_span_supports_the_span_protocol(self):
        with telemetry.NOOP_SPAN as span:
            assert span.set(a=1) is span

    def test_no_context_when_disabled(self):
        assert telemetry.current_context() is None

    def test_write_record_dropped_when_disabled(self):
        telemetry.get_tracer().write_record({"manifest": {}})
        assert telemetry.get_tracer().finished == []


class TestSpans:
    def test_nesting_parents_and_attrs(self):
        telemetry.configure(enabled=True)
        with telemetry.span("outer", a=1) as outer:
            with telemetry.span("inner") as inner:
                inner.set(found=3)
        records = telemetry.get_tracer().finished
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["attrs"] == {"a": 1}
        assert by_name["inner"]["attrs"] == {"found": 3}
        # Children close before parents, so inner is recorded first.
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert all(r["dur"] >= 0.0 for r in records)

    def test_name_may_appear_as_an_attribute(self):
        # The span's own name parameter is positional-only, so hot
        # paths can attach a `name=` attr (the monitor fleet does).
        telemetry.configure(enabled=True)
        with telemetry.span("monitor.task", name="probe-3"):
            pass
        (record,) = telemetry.get_tracer().finished
        assert record["name"] == "monitor.task"
        assert record["attrs"] == {"name": "probe-3"}

    def test_exception_annotates_and_propagates(self):
        telemetry.configure(enabled=True)
        with pytest.raises(ValueError):
            with telemetry.span("boom"):
                raise ValueError("no")
        (record,) = telemetry.get_tracer().finished
        assert record["attrs"]["error"] == "ValueError"

    def test_thread_local_stacks(self):
        telemetry.configure(enabled=True)
        seen = {}

        def worker():
            with telemetry.span("thread-root") as span:
                seen["parent"] = span.parent_id

        with telemetry.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The other thread's stack is independent: no cross-parenting.
        assert seen["parent"] is None

    def test_drain_clears_the_buffer(self):
        telemetry.configure(enabled=True)
        with telemetry.span("one"):
            pass
        assert [r["name"] for r in telemetry.get_tracer().drain()] == [
            "one"
        ]
        assert telemetry.get_tracer().finished == []


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure(enabled=True, trace_path=path, run_id="r-t")
        with telemetry.span("outer", k="v"):
            with telemetry.span("inner"):
                pass
        records = telemetry.load_trace(path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert all(r["run"] == "r-t" for r in records)
        assert all(r["pid"] == os.getpid() for r in records)

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"name": "ok", "span": "1.1", "dur": 0.0})
            + "\nnot json\n\n"
        )
        assert [r["name"] for r in telemetry.load_trace(str(path))] == [
            "ok"
        ]

    def test_export_creates_directory(self, tmp_path):
        path = str(tmp_path / "nested" / "trace.jsonl")
        telemetry.configure(enabled=True, trace_path=path)
        with telemetry.span("s"):
            pass
        assert os.path.exists(path)


class TestSpanContext:
    def test_context_is_picklable(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure(enabled=True, trace_path=path, run_id="r-p")
        with telemetry.span("dispatch"):
            ctx = telemetry.current_context()
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        assert clone.run_id == "r-p"

    def test_activate_parents_worker_spans(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry.configure(enabled=True, trace_path=path, run_id="r-a")
        with telemetry.span("dispatch") as dispatch:
            ctx = telemetry.current_context()
        with telemetry.activate(ctx):
            with telemetry.span("worker"):
                pass
        records = telemetry.load_trace(path)
        by_name = {r["name"]: r for r in records}
        assert by_name["worker"]["parent"] == dispatch.span_id
        # Outside activate, top-level spans are unparented again.
        with telemetry.span("after"):
            pass
        assert telemetry.get_tracer().finished[-1]["parent"] is None

    def test_activate_none_is_a_noop(self):
        with telemetry.activate(None):
            assert telemetry.span("x") is telemetry.NOOP_SPAN

    def test_activate_rebuilds_mismatched_tracer(self, tmp_path):
        # Spawn-safety: a worker whose default tracer is disabled
        # adopts the dispatcher's configuration from the context.
        path = str(tmp_path / "trace.jsonl")
        ctx = telemetry.SpanContext(
            run_id="r-spawn", span_id="abc.1", trace_path=path
        )
        assert not telemetry.enabled()
        with telemetry.activate(ctx):
            assert telemetry.enabled()
            with telemetry.span("adopted"):
                pass
        (record,) = telemetry.load_trace(path)
        assert record["run"] == "r-spawn"
        assert record["parent"] == "abc.1"
