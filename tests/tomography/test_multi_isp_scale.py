"""Memory regression: ≥5k-path records→verdict under a hard budget.

The PR-6 scaling contract (DESIGN.md S20): on the 8×13 federated
multi-ISP topology (5356 paths, 196 links) the sparse/bit-packed
pipeline must complete records→verdict within a fixed tracemalloc
peak — monolithic (``materialize=False``) and sharded — and the two
must agree bitwise. Measured peaks at the time of writing were
~173 MB monolithic and ~59 MB sharded; the budgets below leave
≈1.5–2× headroom so the test fails on a genuine regression (e.g. a
dense P×P intermediate, ~229 MB of float64 alone at this size), not
on allocator noise.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.sharding import infer_sharded
from repro.experiments.runner import infer_from_measurements
from repro.measurement.synthetic import synthesize_records
from repro.topology.generators import random_two_class_performance
from repro.topology.multi_isp import build_federated_multi_isp

#: Hard tracemalloc-peak budgets (bytes) for the 5356-path run.
MONOLITHIC_BUDGET = 256 * 1024 * 1024
SHARDED_BUDGET = 128 * 1024 * 1024

NUM_INTERVALS = 60


@pytest.fixture(scope="module")
def scale_case():
    fed = build_federated_multi_isp(8, 13)
    assert len(fed.network.path_ids) >= 5000
    perf, _ = random_two_class_performance(
        np.random.default_rng(5), fed.network, num_violations=4
    )
    data = synthesize_records(
        perf, np.random.default_rng(6), num_intervals=NUM_INTERVALS
    )
    return fed, data


def _traced_peak(fn):
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_monolithic_within_budget(scale_case):
    fed, data = scale_case
    # A fresh network: the module fixture's caches must not subsidize
    # the measured run.
    net = build_federated_multi_isp(8, 13).network
    (_, alg), peak = _traced_peak(
        lambda: infer_from_measurements(net, data, materialize=False)
    )
    assert alg.scores  # non-vacuous
    assert not alg.systems  # the memory-bounded mode
    assert peak <= MONOLITHIC_BUDGET, f"peak {peak / 1e6:.1f} MB"


def test_sharded_within_budget_and_identical(scale_case):
    fed, data = scale_case
    net = build_federated_multi_isp(8, 13).network
    (_, sharded), peak = _traced_peak(
        lambda: infer_sharded(net, data, fed.shard_plan())
    )
    assert peak <= SHARDED_BUDGET, f"peak {peak / 1e6:.1f} MB"
    # Bitwise agreement with the monolith on the full-scale topology.
    _, mono = infer_from_measurements(
        fed.network, data, materialize=False
    )
    assert sharded.scores == mono.scores
    assert set(sharded.identified) == set(mono.identified)
    assert set(sharded.neutral) == set(mono.neutral)
    assert set(sharded.skipped) == set(mono.skipped)
