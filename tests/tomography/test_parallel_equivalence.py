"""Differential harness: parallel ≡ sequential ≡ monolithic.

The DESIGN.md S24 lock on :mod:`repro.parallel`: for any topology,
link partition, worker count, and execution leg (thread or
process+shm), :func:`~repro.core.sharding.infer_sharded` must return
*bitwise* the verdict of its own sequential loop — which PR-6 already
pins bitwise to the monolithic
:func:`~repro.experiments.runner.infer_from_measurements`. Worker
count and leg choice are execution vehicles, never part of the
result.

Coverage: a deterministic federated multi-ISP case across workers
1/2/4 × both legs (with a module-scoped executor reused between
tests, locking warm-pool reuse), plus hypothesis-generated random
topologies × random partitions × sampled worker counts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.network import Network, Path
from repro.core.sharding import ShardPlan, infer_sharded
from repro.experiments.runner import infer_from_measurements
from repro.measurement.synthetic import synthesize_records
from repro.parallel import REGISTRY, ShardExecutor
from repro.topology.generators import random_two_class_performance
from repro.topology.multi_isp import build_federated_multi_isp

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_bitwise_verdict(got, expected):
    assert got.identified == expected.identified
    assert got.identified_raw == expected.identified_raw
    assert got.neutral == expected.neutral
    assert got.skipped == expected.skipped
    assert set(got.scores) == set(expected.scores)
    for sigma, score in expected.scores.items():
        assert got.scores[sigma] == score, sigma


@pytest.fixture(scope="module")
def federated():
    fed = build_federated_multi_isp(3, 4)
    perf, _ = random_two_class_performance(
        np.random.default_rng(31), fed.network, num_violations=3
    )
    data = synthesize_records(
        perf, np.random.default_rng(32), num_intervals=240
    )
    plan = fed.shard_plan()
    _, mono = infer_from_measurements(fed.network, data)
    _, seq = infer_sharded(fed.network, data, plan, workers=1)
    _assert_bitwise_verdict(seq, mono)
    return fed.network, data, plan, mono


@pytest.fixture(scope="module")
def warm_executors():
    """Module-scoped executors: every parametrized case below reuses
    the same warm pools, so pool persistence across runs is itself
    under test."""
    executors = {
        (mode, workers): ShardExecutor(workers=workers, mode=mode)
        for mode in ("thread", "process")
        for workers in (2, 4)
    }
    yield executors
    for ex in executors.values():
        ex.close()


class TestFederatedParallel:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_workers_and_legs_are_invisible(
        self, federated, workers, mode
    ):
        net, data, plan, mono = federated
        _, par = infer_sharded(
            net, data, plan, workers=workers, parallel_mode=mode
        )
        _assert_bitwise_verdict(par, mono)
        assert REGISTRY.active_segments() == 0

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_consecutive_runs_on_one_executor(
        self, federated, warm_executors, mode, workers
    ):
        net, data, plan, mono = federated
        ex = warm_executors[(mode, workers)]
        runs_before = ex.runs
        _, first = infer_sharded(net, data, plan, executor=ex)
        _, second = infer_sharded(net, data, plan, executor=ex)
        _assert_bitwise_verdict(first, mono)
        _assert_bitwise_verdict(second, mono)
        assert ex.runs == runs_before + 2
        assert REGISTRY.active_segments() == 0


# ----------------------------------------------------------------------
# Hypothesis: random topologies × partitions × worker counts
# ----------------------------------------------------------------------


@st.composite
def random_parallel_cases(draw):
    num_links = draw(st.integers(3, 7))
    links = [f"l{k}" for k in range(num_links)]
    num_paths = draw(st.integers(3, 6))
    paths = []
    for i in range(num_paths):
        size = draw(st.integers(1, min(4, num_links)))
        chosen = draw(
            st.permutations(links).map(lambda p: tuple(p[:size]))
        )
        paths.append(Path(f"p{i}", chosen))
    net = Network(links, paths)
    num_shards = draw(st.integers(2, 3))
    owner_of = {
        lid: f"s{draw(st.integers(0, num_shards - 1))}" for lid in links
    }
    seed = draw(st.integers(0, 2**16))
    workers = draw(st.sampled_from([2, 4]))
    mode = draw(st.sampled_from(["thread", "process"]))
    return net, owner_of, seed, workers, mode


@_SETTINGS
@given(random_parallel_cases())
def test_random_parallel_matches_sequential(case):
    net, owner_of, seed, workers, mode = case
    rng = np.random.default_rng(seed)
    perf, _ = random_two_class_performance(rng, net, num_violations=1)
    data = synthesize_records(perf, rng, num_intervals=60)
    plan = ShardPlan.from_link_partition(net, owner_of)
    # min_pathsets=1 examines every σ — exercises the merge on groups
    # the default threshold would hide on tiny nets.
    _, seq = infer_sharded(net, data, plan, min_pathsets=1, workers=1)
    _, par = infer_sharded(
        net,
        data,
        plan,
        min_pathsets=1,
        workers=workers,
        parallel_mode=mode,
    )
    _assert_bitwise_verdict(par, seq)
    assert REGISTRY.active_segments() == 0
