"""Differential harness: sharded inference ≡ monolithic ≡ reference.

The PR-6 lock on :mod:`repro.core.sharding`: for any link partition,
:func:`infer_sharded` must produce the *same verdict* as the
monolithic :func:`repro.experiments.runner.infer_from_measurements`
— identical identified / neutral / skipped sets and bitwise-equal
per-σ unsolvability scores (DESIGN.md S20 argues why; this suite
checks it). Both are additionally compared against the frozen
O(P²)-Python :func:`repro.core.algorithm_reference.infer_reference`
on topologies small enough to afford it.

Coverage: deterministic federated multi-ISP topologies (including a
≥1k-path one, sharded by the administrative ISP partition) plus
hypothesis-generated random networks with random link partitions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.algorithm_reference import infer_reference
from repro.core.network import Network, Path
from repro.core.sharding import ShardPlan, infer_sharded
from repro.exceptions import ShardingError, UnknownLinkError
from repro.experiments.config import EmulationSettings
from repro.experiments.runner import infer_from_measurements
from repro.measurement.synthetic import synthesize_records
from repro.topology.generators import random_two_class_performance
from repro.topology.multi_isp import build_federated_multi_isp

RELTOL = 1e-9

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_same_verdict(got, expected, exact_scores=True):
    """Sharded vs monolithic: same sets, same (bitwise) scores."""
    assert set(got.identified) == set(expected.identified)
    assert set(got.identified_raw) == set(expected.identified_raw)
    assert set(got.neutral) == set(expected.neutral)
    assert set(got.skipped) == set(expected.skipped)
    assert set(got.scores) == set(expected.scores)
    for sigma, score in expected.scores.items():
        if exact_scores:
            assert got.scores[sigma] == score, sigma
        else:
            assert got.scores[sigma] == pytest.approx(
                score, rel=RELTOL, abs=RELTOL
            ), sigma


# ----------------------------------------------------------------------
# Deterministic federated multi-ISP cases
# ----------------------------------------------------------------------

#: (num_isps, hosts_per_isp, perf seed, violations, intervals,
#:  run the O(P²) reference too?)
FEDERATED_CASES = {
    "fed2x3": (2, 3, 21, 2, 600, True),
    "fed3x4": (3, 4, 22, 3, 600, True),
    # ≥1k paths (5·10 federated = 1225): reference is exempt — it is
    # intentionally unvectorized Python and would dominate the suite.
    "fed5x10": (5, 10, 23, 3, 300, False),
}


def _federated_case(name):
    num_isps, hosts, seed, violations, intervals, with_ref = (
        FEDERATED_CASES[name]
    )
    fed = build_federated_multi_isp(num_isps, hosts)
    perf, _ = random_two_class_performance(
        np.random.default_rng(seed), fed.network, num_violations=violations
    )
    data = synthesize_records(
        perf,
        np.random.default_rng(sum(ord(c) for c in name)),
        num_intervals=intervals,
    )
    return fed, data, with_ref


class TestFederatedEquivalence:
    @pytest.mark.parametrize("name", sorted(FEDERATED_CASES))
    def test_sharded_matches_monolithic(self, name):
        fed, data, with_ref = _federated_case(name)
        plan = fed.shard_plan()
        assert len(plan.shards) == fed.num_isps
        _, mono = infer_from_measurements(fed.network, data)
        _, shard = infer_sharded(fed.network, data, plan)
        assert mono.scores, name  # non-vacuous: σ systems exist
        _assert_same_verdict(shard, mono, exact_scores=True)
        if with_ref:
            _, ref = infer_reference(fed.network, data)
            _assert_same_verdict(shard, ref, exact_scores=False)

    def test_single_shard_plan_is_monolithic(self):
        fed, data, _ = _federated_case("fed2x3")
        plan = ShardPlan.from_link_partition(
            fed.network, {lid: "all" for lid in fed.network.link_ids}
        )
        _, mono = infer_from_measurements(fed.network, data)
        _, shard = infer_sharded(fed.network, data, plan)
        _assert_same_verdict(shard, mono, exact_scores=True)

    def test_sampled_mode_delegates_to_monolithic(self):
        """Outside the expected-mode fast path the sharded entry
        point must fall back to (and exactly match) the monolith."""
        fed, data, _ = _federated_case("fed2x3")
        cfg = EmulationSettings(normalization_mode="sampled")
        _, mono = infer_from_measurements(
            fed.network, data, settings=cfg,
            rng=np.random.default_rng(7),
        )
        _, shard = infer_sharded(
            fed.network, data, fed.shard_plan(), settings=cfg,
            rng=np.random.default_rng(7),
        )
        _assert_same_verdict(shard, mono, exact_scores=True)


# ----------------------------------------------------------------------
# Shard-plan construction
# ----------------------------------------------------------------------

class TestShardPlan:
    def _net(self):
        return Network(
            ["l0", "l1", "l2"],
            [
                Path("p0", ("l0", "l1")),
                Path("p1", ("l1", "l2")),
                Path("p2", ("l0", "l2")),
            ],
        )

    def test_paths_are_link_unions(self):
        net = self._net()
        plan = ShardPlan.from_link_partition(
            net, {"l0": "s0", "l1": "s0", "l2": "s1"}
        )
        assert plan.names == ("s0", "s1")
        s0, s1 = plan.shards
        assert s0.link_ids == ("l0", "l1")
        assert s0.path_ids == ("p0", "p1", "p2")
        assert s1.link_ids == ("l2",)
        assert s1.path_ids == ("p1", "p2")

    def test_unknown_link_rejected(self):
        net = self._net()
        owners = {lid: "s" for lid in net.link_ids}
        owners["ghost"] = "s"
        with pytest.raises(UnknownLinkError):
            ShardPlan.from_link_partition(net, owners)

    def test_uncovered_link_rejected(self):
        net = self._net()
        with pytest.raises(ShardingError):
            ShardPlan.from_link_partition(net, {"l0": "s", "l1": "s"})


# ----------------------------------------------------------------------
# Hypothesis: random topologies × random link partitions
# ----------------------------------------------------------------------

@st.composite
def random_sharded_cases(draw):
    num_links = draw(st.integers(3, 7))
    links = [f"l{k}" for k in range(num_links)]
    num_paths = draw(st.integers(3, 5))
    paths = []
    for i in range(num_paths):
        size = draw(st.integers(1, min(4, num_links)))
        chosen = draw(
            st.permutations(links).map(lambda p: tuple(p[:size]))
        )
        paths.append(Path(f"p{i}", chosen))
    net = Network(links, paths)
    num_shards = draw(st.integers(1, 3))
    owner_of = {
        lid: f"s{draw(st.integers(0, num_shards - 1))}" for lid in links
    }
    seed = draw(st.integers(0, 2**16))
    return net, owner_of, seed


@_SETTINGS
@given(random_sharded_cases())
def test_random_partitions_match_monolithic_and_reference(case):
    net, owner_of, seed = case
    rng = np.random.default_rng(seed)
    perf, _ = random_two_class_performance(rng, net, num_violations=1)
    data = synthesize_records(perf, rng, num_intervals=60)
    plan = ShardPlan.from_link_partition(net, owner_of)
    # min_pathsets=1 examines every σ — exercises the merge on groups
    # the default threshold would hide on tiny nets.
    _, mono = infer_from_measurements(net, data, min_pathsets=1)
    _, shard = infer_sharded(net, data, plan, min_pathsets=1)
    _assert_same_verdict(shard, mono, exact_scores=True)
    _, ref = infer_reference(net, data, min_pathsets=1)
    _assert_same_verdict(shard, ref, exact_scores=False)
