"""Tests for the classical tomography baselines."""

import numpy as np
import pytest

from repro.core.network import network_from_path_specs
from repro.measurement.records import MeasurementData, PathRecord
from repro.tomography import (
    boolean_tomography,
    lsq_tomography,
    path_states,
    smallest_explanation,
)


def _net():
    # Three paths over a shared link l0 plus private links.
    return network_from_path_specs(
        {
            "p1": ["l0", "l1"],
            "p2": ["l0", "l2"],
            "p3": ["l0", "l3"],
        }
    )


def _data(loss_pattern):
    """loss_pattern: {path: list of loss fractions per interval}."""
    records = []
    for pid, fracs in loss_pattern.items():
        sent = np.full(len(fracs), 100, dtype=np.int64)
        lost = np.array([int(100 * f) for f in fracs], dtype=np.int64)
        records.append(PathRecord(pid, sent, lost))
    return MeasurementData(records)


class TestPathStates:
    def test_states(self):
        data = _data({"p1": [0.0, 0.05], "p2": [0.0, 0.0]})
        states, ids = path_states(data, ["p1", "p2"])
        assert ids == ("p1", "p2")
        np.testing.assert_array_equal(states[0], [True, False])
        np.testing.assert_array_equal(states[1], [True, True])


class TestSmallestExplanation:
    def test_shared_link_blamed(self):
        net = _net()
        blamed = smallest_explanation(
            net, good_paths=set(), bad_paths={"p1", "p2", "p3"}
        )
        assert blamed == {"l0"}

    def test_good_path_exonerates(self):
        net = _net()
        blamed = smallest_explanation(
            net, good_paths={"p3"}, bad_paths={"p1"}
        )
        # l0 on a good path => p1's private l1 must be at fault.
        assert blamed == {"l1"}

    def test_unexplainable(self):
        net = _net()
        blamed = smallest_explanation(
            net, good_paths={"p1", "p2", "p3"}, bad_paths=set()
        )
        assert blamed == frozenset()


class TestBooleanTomography:
    def test_localizes_shared_congestion(self):
        # All paths congested together in 3 of 10 intervals.
        frac = [0.05, 0, 0, 0.05, 0, 0, 0.05, 0, 0, 0]
        data = _data({p: frac for p in ("p1", "p2", "p3")})
        result = boolean_tomography(_net(), data)
        assert result.link_congestion["l0"] == pytest.approx(0.3)
        assert result.link_congestion["l1"] == 0.0

    def test_misattributes_under_differentiation(self):
        """The paper's motivation: when l0 congests only p3's class,
        neutral tomography blames p3's private link instead."""
        data = _data(
            {
                "p1": [0.0] * 10,
                "p2": [0.0] * 10,
                "p3": [0.05] * 10,
            }
        )
        result = boolean_tomography(_net(), data)
        assert result.link_congestion["l0"] == 0.0
        assert result.link_congestion["l3"] == pytest.approx(1.0)


class TestLsqTomography:
    def test_neutral_fit(self):
        frac = [0.05, 0, 0, 0.05, 0] * 2
        data = _data({p: frac for p in ("p1", "p2", "p3")})
        result = lsq_tomography(_net(), data)
        assert result.residual_norm == pytest.approx(0.0, abs=1e-9)
        # Shared cost may land on l0 or be spread; total path cost of
        # p1 must match its observation.
        total = result.link_costs["l0"] + result.link_costs["l1"]
        assert total == pytest.approx(-np.log(0.6), rel=0.05)
