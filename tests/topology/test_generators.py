"""Tests for the random topology generators."""

import numpy as np
import pytest

from repro.core.algorithm import identify_non_neutral_exact
from repro.core.slices import shared_sequences
from repro.exceptions import ConfigurationError
from repro.topology.generators import (
    chain_network,
    random_mesh_network,
    random_tree_network,
    random_two_class_performance,
    star_network,
)


class TestStar:
    def test_structure(self):
        net = star_network(4)
        assert len(net.paths) == 4
        for pid in net.path_ids:
            assert "hub" in net.links_of(pid)

    def test_hub_is_only_shared_sequence(self):
        net = star_network(5)
        assert set(shared_sequences(net)) == {("hub",)}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            star_network(1)


class TestChain:
    def test_structure(self):
        net = chain_network(3, 4)
        assert len(net.paths) == 4
        # p1 has the longest prefix.
        assert net.links_of("p1") >= {"c1", "c2", "c3"}

    def test_nested_shared_sequences(self):
        net = chain_network(3, 4)
        buckets = shared_sequences(net)
        assert ("c1",) in buckets or ("c1", "c2") in buckets

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chain_network(0, 2)


class TestRandomTree:
    def test_deterministic(self):
        a = random_tree_network(np.random.default_rng(5))
        b = random_tree_network(np.random.default_rng(5))
        assert a.path_ids == b.path_ids
        assert a.link_ids == b.link_ids

    def test_paths_are_loop_free(self):
        for seed in range(8):
            net = random_tree_network(np.random.default_rng(seed))
            for pid in net.path_ids:
                links = net.path(pid).links
                assert len(set(links)) == len(links)


class TestRandomMesh:
    def test_structure(self):
        net = random_mesh_network(np.random.default_rng(1), num_stubs=4)
        assert len(net.paths) == 6  # all stub pairs
        for pid in net.path_ids:
            links = net.links_of(pid)
            assert any(l.startswith("a") for l in links)
            assert any(l.startswith("in") for l in links)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_mesh_network(np.random.default_rng(0), num_stubs=2)


class TestRandomPerformance:
    def test_violations_planted(self):
        rng = np.random.default_rng(2)
        net = star_network(4)
        perf, classes = random_two_class_performance(
            rng, net, num_violations=2
        )
        assert len(perf.non_neutral_links) == 2
        assert len(classes) == 2

    def test_exact_algorithm_never_false_positive_on_random(self):
        """Across random meshes with planted violations, exact-mode
        Algorithm 1 reports only sequences touching a violator."""
        for seed in range(6):
            rng = np.random.default_rng(seed)
            net = random_mesh_network(rng, num_stubs=4, extra_edges=1)
            perf, _ = random_two_class_performance(rng, net)
            result = identify_non_neutral_exact(perf, tol=1e-7)
            for sigma in result.identified:
                assert set(sigma) & perf.non_neutral_links, (seed, sigma)
