"""Tests for the figure networks and evaluation topologies."""

import pytest

from repro.core.slices import shared_sequences
from repro.topology.dumbbell import (
    CLASS1_PATHS,
    CLASS2_PATHS,
    SHARED_LINK,
    build_dumbbell,
)
from repro.topology.figures import (
    ALL_FIGURES,
    figure1,
    figure2,
    figure4,
    figure5,
    figure6,
)
from repro.topology.multi_isp import (
    ACCESS,
    INGRESS,
    NEUTRAL_BUSY_LINK,
    POLICED_LINKS,
    STUB_PAIRS,
    build_multi_isp,
)


class TestFigureNetworks:
    def test_all_figures_build(self):
        for name, builder in ALL_FIGURES.items():
            fig = builder()
            assert fig.network.link_ids
            assert fig.performance.network is fig.network

    def test_figure1_structure(self):
        fig = figure1()
        assert fig.network.links_of("p1") == {"l1", "l2"}
        assert fig.network.links_of("p2") == {"l1", "l3"}
        assert fig.network.links_of("p3") == {"l3", "l4"}
        assert fig.non_neutral_links == {"l1"}
        assert fig.classes.class_of("p2") == "c2"

    def test_figure2_two_paths(self):
        fig = figure2()
        assert len(fig.network.paths) == 2

    def test_figure4_l2_unsliceable(self):
        fig = figure4()
        assert ("l2",) not in shared_sequences(fig.network)

    def test_figure5_exact_paper_numbers(self):
        fig = figure5()
        import math

        lp = fig.performance.link_performance("l1")
        assert lp.for_class("c1") == 0.0
        assert lp.for_class("c2") == pytest.approx(math.log(2))

    def test_figure6_only_l1_non_neutral(self):
        fig = figure6()
        assert fig.performance.non_neutral_links == {"l1"}


class TestDumbbell:
    def test_structure(self):
        topo = build_dumbbell()
        net = topo.network
        assert len(net.links) == 9
        assert len(net.paths) == 4
        for pid in net.path_ids:
            assert SHARED_LINK in net.links_of(pid)

    def test_single_candidate_sequence(self):
        topo = build_dumbbell()
        buckets = shared_sequences(topo.network)
        assert set(buckets) == {(SHARED_LINK,)}
        assert len(buckets[(SHARED_LINK,)]) == 6

    def test_classes(self):
        topo = build_dumbbell()
        for pid in CLASS2_PATHS:
            assert topo.classes.class_of(pid) == "c2"
        for pid in CLASS1_PATHS:
            assert topo.classes.class_of(pid) == "c1"

    def test_mechanisms(self):
        assert build_dumbbell().link_specs[SHARED_LINK].policer is None
        pol = build_dumbbell("policing", 0.25)
        assert pol.link_specs[SHARED_LINK].policer.rate_fraction == 0.25
        shp = build_dumbbell("shaping", 0.4)
        assert shp.link_specs[SHARED_LINK].shaper.rate_fraction == 0.4
        with pytest.raises(ValueError):
            build_dumbbell("rate-limiting")

    def test_only_shared_link_is_bottleneck(self):
        topo = build_dumbbell(capacity_mbps=100)
        for lid, spec in topo.link_specs.items():
            if lid == SHARED_LINK:
                assert spec.capacity_mbps == 100
            else:
                assert spec.capacity_mbps == 1000


class TestMultiIsp:
    def test_24_links_25_paths(self):
        topo = build_multi_isp()
        assert len(topo.network.links) == 24
        assert len(topo.network.paths) == 25
        assert len(topo.dark_paths) == 10
        assert len(topo.light_paths) == 10
        assert len(topo.white_paths) == 5

    def test_policers_placed(self):
        topo = build_multi_isp(policing_rate=0.2)
        for lid in POLICED_LINKS:
            policer = topo.link_specs[lid].policer
            assert policer is not None
            assert policer.rate_fraction == 0.2
            assert policer.target_class == "c2"
        assert topo.link_specs[NEUTRAL_BUSY_LINK].policer is None

    def test_neutral_variant(self):
        topo = build_multi_isp(policed=())
        assert all(
            spec.policer is None for spec in topo.link_specs.values()
        )

    def test_classes(self):
        topo = build_multi_isp()
        for pid in topo.light_paths:
            assert topo.classes.class_of(pid) == "c2"
        for pid in topo.dark_paths + topo.white_paths:
            assert topo.classes.class_of(pid) == "c1"

    def test_dark_and_light_share_routes(self):
        topo = build_multi_isp()
        net = topo.network
        for i, j in STUB_PAIRS:
            assert net.links_of(f"dark{i}{j}") == net.links_of(
                f"light{i}{j}"
            )

    def test_every_link_carries_traffic(self):
        topo = build_multi_isp()
        assert not topo.network.unused_links()

    def test_policer_sequences_are_candidates(self):
        """Each policer appears in at least one examinable sequence
        (≥ 2 path pairs), so the algorithm can localize it."""
        topo = build_multi_isp()
        measured = topo.network.restricted_to_paths(
            topo.dark_paths + topo.light_paths
        )
        buckets = shared_sequences(measured)
        rich = {
            sigma for sigma, pairs in buckets.items() if len(pairs) >= 2
        }
        for policer in POLICED_LINKS:
            assert any(policer in sigma for sigma in rich), policer

    def test_stub_fan_sequences(self):
        topo = build_multi_isp()
        measured = topo.network.restricted_to_paths(
            topo.dark_paths + topo.light_paths
        )
        buckets = shared_sequences(measured)
        # Stub-1 fan through the policed backbone shortcut.
        assert (ACCESS[1], INGRESS[1], "l5") in buckets
