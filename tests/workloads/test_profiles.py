"""Tests for the Table 1 / Table 3 workload profiles."""

import pytest

from repro.workloads.profiles import (
    TABLE1,
    TABLE3,
    class_workload,
    group_workload,
    slots_for_size,
)


def test_table1_defaults_are_in_the_grid():
    assert TABLE1.default_rtt_ms in TABLE1.rtt_ms
    assert TABLE1.default_rate_percent in TABLE1.rate_percent
    assert TABLE1.default_mean_flow_size_mb in TABLE1.mean_flow_size_mb
    assert TABLE1.default_flows_per_path in TABLE1.flows_per_path
    assert (
        TABLE1.default_loss_threshold_percent
        in TABLE1.loss_threshold_percent
    )


def test_slots_for_size_calibration():
    assert slots_for_size(1.0) == 70  # Table 1's high-parallelism value
    assert slots_for_size(10.0) == TABLE1.default_flows_per_path
    assert slots_for_size(10000.0) == TABLE1.default_flows_per_path


def test_class_workload_uniform():
    wl = class_workload(["p1", "p2"], mean_size_mb=10.0, rtt_ms=80.0)
    assert set(wl) == {"p1", "p2"}
    assert wl["p1"].rtt_seconds == pytest.approx(0.08)
    assert len(wl["p1"].slots) == 15


def test_class_workload_explicit_slots():
    wl = class_workload(["p1"], mean_size_mb=10.0, flows_per_path=3)
    assert len(wl["p1"].slots) == 3


def test_table3_groups():
    assert TABLE3["dark"].flow_sizes_mb == (1.0, 10.0, 40.0)
    assert TABLE3["light"].flow_sizes_mb == (10000.0,)
    assert not TABLE3["white"].measured
    assert TABLE3["dark"].measured


def test_group_workload_fixed_sizes():
    wl = group_workload(TABLE3["dark"], parallel_copies=2)
    assert len(wl.slots) == 6
    assert all(slot.pareto_shape == 0.0 for slot in wl.slots)
    sizes = sorted(slot.mean_size_mb for slot in wl.slots)
    assert sizes == [1.0, 1.0, 10.0, 10.0, 40.0, 40.0]


def test_group_workload_measured_flag():
    assert not group_workload(TABLE3["white"]).measured
    assert group_workload(TABLE3["light"]).measured
